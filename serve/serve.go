// Package serve is the sharded serving layer: it spreads a persistent
// pam structure across N goroutine-owned partitions so many writers and
// many readers can hit it concurrently, while every reader still sees a
// consistent whole-store state.
//
// # Architecture
//
// Each shard is one goroutine owning one persistent structure (a
// pam.AugMap for Store, a rangetree.Tree for PointStore) and a bounded
// op mailbox. Writers never touch shard state: a batch is admitted
// against the target shards' budgets, split by the routing function
// under a global sequencer lock, and its per-shard sub-batches pushed
// into the mailboxes. Shards drain their mailboxes, coalescing adjacent
// write sub-batches into larger bulk updates (MultiInsert/MultiDelete
// for maps), so a burst of small writes amortizes into the structures'
// parallel bulk machinery — the paper's "updates are sequentialized ...
// applied when needed in bulk" concurrency model, scaled out across
// partitions.
//
// Because the per-shard structures are persistent, a snapshot is
// zero-copy: Snapshot injects a marker into every mailbox at a single
// sequencer point and assembles the per-shard versions the markers
// observe. No writer is blocked for more than the marker push, and the
// returned view stays valid (and race-free to read) forever.
//
// # The asynchronous write pipeline
//
// Apply/Put/Delete have async variants (ApplyAsync/PutAsync/
// DeleteAsync) that return a completion *Future instead of blocking.
// The pipeline is:
//
//		admit -> sequence+enqueue -> shard flush (apply) -> resolve
//
//	  - Admission: each shard has a budget (Tuning.MailboxDepth queued
//	    sub-batches, Tuning.ShardOpBudget queued ops). A batch over any
//	    target shard's budget either parks the writer
//	    (BackpressureBlock) or fails fast with ErrOverloaded
//	    (BackpressureFastFail) — before a sequence number is consumed,
//	    so a rejected batch leaves no trace.
//	  - Sequencing: an admitted batch gets the next global seqno, is
//	    appended to the WAL hook (durable stores), and its sub-batches
//	    enter the mailboxes, all under one sequencer lock.
//	  - Flush: each shard holds async sub-batches to coalesce them,
//	    flushing when held ops reach Tuning.FlushOps, when
//	    Tuning.FlushWait has passed since the oldest held op arrived,
//	    when a synchronous writer is waiting, or when a snapshot/
//	    rebalance marker (or Close) demands the up-to-date state.
//	  - Resolution: a single resolver goroutine completes futures in
//	    global sequence order — a future never resolves before every
//	    batch sequenced ahead of it. On durable stores the resolver
//	    first waits for the WAL group-commit fsync covering the batch,
//	    so a resolved future is a durability guarantee (see Ack.Err).
//
// The sync Apply is the async pipeline with an urgent flag (shards skip
// the coalescing hold) plus Future.Wait.
//
// # The snapshot-consistency guarantee
//
// Every write batch is assigned a position in one global sequence (its
// sequence number, returned by Apply and Future.Seq) the moment it is
// submitted, and shards apply sub-batches in exactly that order. A
// snapshot taken at sequence position S (View.Seq reports S) contains
// exactly the batches sequenced before it:
//
//   - Atomicity: a batch is never partially visible — either all of its
//     per-shard effects are in the view or none are, even when the batch
//     spans shards.
//   - Prefix consistency: the view equals the state reached by applying
//     batches 0..S-1, in sequence order, to an initially empty store. No
//     gaps: a view can never show batch j without every batch i < j.
//     Held (coalescing) sub-batches don't weaken this: a marker forces
//     the shard to flush everything held before reporting its state.
//   - Real-time bound: if Apply(b) returned — or b's future resolved —
//     before Snapshot was called, then b's sequence number is below S,
//     so b is visible. A batch still unresolved when the snapshot was
//     taken may be included (if it was sequenced before the marker) or
//     not — never partially.
//
// Readers therefore observe the store as if all acknowledged writes and
// some subset of in-flight writes ran sequentially — the differential
// harness in harness_test.go checks exactly this against a sequential
// pam oracle, under -race, across thousands of randomized schedules,
// with both sync and async writers.
//
// # Read replicas
//
// Snapshot is exact but pays one marker round-trip through every
// mailbox. ReaderView is the cheap alternative: each shard publishes
// its state (copy-on-write, one atomic pointer) after applying a
// flush, and ReaderView assembles a view from the latest published
// states with no locks, no mailbox traffic, and no writer
// coordination — a single atomic load, so replica reads scale with
// reader count and never perturb the write path. The price is a weaker
// contract: each shard individually is a sequence-consistent prefix of
// its own sub-batch stream (versions and epochs only move forward),
// but different shards may reflect different global sequence points, so
// a multi-shard batch can be partially visible and View.Seq reports 0.
// Tuning.ReplicaRefresh rate-limits publication; zero publishes on
// every flush.
//
// # Background carries
//
// The spatial stores' ladder carries (internal/dynamic) occasionally
// rebuild a large prefix of the structure; inline, that stalls the
// shard goroutine and every writer behind it. With Tuning.CarryWorkers
// > 0 a full write buffer spills an overflow run in O(BufCap) and the
// merge runs on a shared worker pool; the shard keeps applying writes
// and answering markers, and queries stay exact because overflow runs
// participate in the signed-sum semantics like ordinary levels.
// Tuning.MaxPendingCarries bounds the spilled-run backlog per shard
// (writers briefly block past it), and a Rebalance invalidates
// in-flight carries so no merge from a discarded ladder ever installs
// into the replacement. Checkpoints settle pending runs in the captured
// (immutable) states, so durability is unaffected.
//
// # Limits
//
// Updates to a single key are totally ordered, but the global order is
// assigned at submission: two racing Apply calls may be sequenced in
// either order. Rebalance (range-sharded stores) briefly blocks writers
// and snapshotters — never readers of existing views — while entries
// move between shards; it changes no logical content and consumes no
// sequence number. Every entry point on a closed store — Apply,
// ApplyAsync, Snapshot, ReaderView, Rebalance, Checkpoint, Compact —
// returns ErrClosed instead of panicking. Point writes reject NaN
// coordinates with ErrNaNPoint before a sequence number is consumed
// (NaN breaks the split routing's ordering).
//
// # Durability and self-healing
//
// Durable stores (DurableStore, DurablePointStore) add a write-ahead
// log, incremental block checkpoints, chain compaction, Merkle root
// digests, and a scrub/repair pipeline; see durable.go for the file
// formats and recovery protocol. The compaction crash-safety contract:
// Compact publishes the new base checkpoint by rename after a full
// sync, and deletes the superseded chain tail and WAL generations only
// afterwards — so a crash at any kill point leaves the directory
// recoverable, either from the old chain (publish never happened) or
// from the new base (recovery picks the newest intact base and sweeps
// the leftovers). No acknowledged batch is ever lost to a compaction
// crash, and recovery after a compaction reads O(live records)
// regardless of update history.
package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// shardState is what a shard reports when it meets a snapshot or
// rebalance marker: its structure and its version (the count of applied
// sub-batches plus rebalance installs).
type shardState[T any] struct {
	idx     int
	state   T
	version uint64
}

// msg is one mailbox item: a write sub-batch (ops + fut), a snapshot
// marker (snap), or a rebalance marker (snap + install).
type msg[O, T any] struct {
	ops []O
	fut *Future
	// urgent marks a sub-batch whose writer is blocked on the result
	// (sync Apply): the shard flushes immediately instead of holding
	// it for the coalescing window.
	urgent  bool
	snap    chan<- shardState[T]
	install <-chan T
}

// shard is one partition: a mailbox plus the goroutine-owned structure.
// state and version are touched only by the shard goroutine; the
// counters are atomics shared with admission control and Stats.
type shard[O, T any] struct {
	idx     int
	mail    chan msg[O, T]
	state   T
	version uint64

	// qMsgs/qOps is the admission budget charge: sub-batches/ops
	// admitted (under the sequencer lock) but not yet applied.
	// Incremented by writers under the sequencer lock, decremented by
	// the shard goroutine after a flush.
	qMsgs atomic.Int64
	qOps  atomic.Int64

	appliedMsgs atomic.Uint64
	appliedOps  atomic.Uint64
	// flushNanos is an EWMA (alpha 1/8) of enqueue-to-applied latency,
	// written only by the shard goroutine.
	flushNanos atomic.Int64
}

// hooks are the durable layer's attachment points.
type hooks[O any] struct {
	// logAppend, when non-nil, is called under the sequencer lock with
	// every batch in sequence order — the WAL hook: because the lock
	// serializes it with sequencing, log order is exactly sequence
	// order, and the durable layer's acknowledged prefix is gapless.
	logAppend func(seq uint64, ops []O)
	// commit, when non-nil, is called by the resolver — in sequence
	// order, after the batch is applied — before its future resolves.
	// The durable stores make it the WAL group-commit fsync (plus the
	// periodic auto-checkpoint), so async acks imply durability. Its
	// error becomes Ack.Err.
	commit func(seq uint64) error
}

// engine is the generic sharded serving core, shared by Store and
// PointStore: admission control, the sequencer, the shard goroutines,
// the ordered resolver, and the marker-based snapshot/rebalance
// protocol.
type engine[O, T any] struct {
	apply func(shard int, state T, ops []O) T
	hooks hooks[O]
	tun   Tuning

	// pub is the replica-publication slot: the last state each shard
	// published at an epoch boundary, read lock-free by ReaderView.
	// Shards republish their slot (copy-on-write CAS) after flushes,
	// throttled by Tuning.ReplicaRefresh; rebalance rewrites the whole
	// vector while every shard is frozen at its marker.
	pub atomic.Pointer[published[O, T]]
	// closedFl mirrors closed for lock-free ReaderView checks.
	closedFl atomic.Bool

	mu     sync.Mutex // the sequencer: guards seq, route, closed, budget reserve, mailbox pushes
	seq    uint64
	route  func(O) int
	shards []*shard[O, T]
	closed bool
	wg     sync.WaitGroup

	// admitMu/admitCond park writers waiting out backpressure. A
	// separate lock on purpose: shards broadcast budget releases here
	// without ever taking the sequencer lock, so a full mailbox can
	// always drain even while a snapshot holds the sequencer.
	admitMu   sync.Mutex
	admitCond *sync.Cond

	resolveq  *futureQueue
	resolveWg sync.WaitGroup
}

// published is one immutable replica-publication snapshot: per-shard
// states, versions (applied sub-batches plus installs), publication
// epochs, and the router in effect when the vector was last rewritten.
// Each shard's slot is a sequenced prefix of that shard's sub-batch
// stream; the slots are not mutually atomic (see ReaderView).
type published[O, T any] struct {
	states   []T
	versions []uint64
	epochs   []uint64
	route    func(O) int
}

func newEngine[O, T any](states []T, route func(O) int, apply func(shard int, state T, ops []O) T, tun Tuning) *engine[O, T] {
	return newEngineAt(states, route, apply, 0, hooks[O]{}, tun)
}

// newEngineAt starts an engine whose next batch gets sequence number
// startSeq (recovery resumes the sequence where the replayed prefix
// ended) with optional durable hooks.
func newEngineAt[O, T any](states []T, route func(O) int, apply func(shard int, state T, ops []O) T, startSeq uint64, h hooks[O], tun Tuning) *engine[O, T] {
	e := &engine[O, T]{
		apply:    apply,
		hooks:    h,
		tun:      tun.withDefaults(),
		route:    route,
		seq:      startSeq,
		resolveq: newFutureQueue(),
	}
	e.pub.Store(&published[O, T]{
		states:   append([]T(nil), states...),
		versions: make([]uint64, len(states)),
		epochs:   make([]uint64, len(states)),
		route:    route,
	})
	e.admitCond = sync.NewCond(&e.admitMu)
	e.shards = make([]*shard[O, T], len(states))
	for i, st := range states {
		s := &shard[O, T]{idx: i, mail: make(chan msg[O, T], e.tun.MailboxDepth), state: st}
		e.shards[i] = s
		e.wg.Add(1)
		go e.shardLoop(s)
	}
	e.resolveWg.Add(1)
	go e.resolveLoop()
	return e
}

// overBudget returns the index of a target shard that cannot admit its
// sub-batch, or -1 when every involved shard has room. An oversized
// sub-batch (bigger than the whole op budget) is admitted when its
// shard is idle, so it is never unschedulable.
func (e *engine[O, T]) overBudget(per [][]O) int {
	for i, sub := range per {
		if len(sub) == 0 {
			continue
		}
		s := e.shards[i]
		if s.qMsgs.Load() >= int64(e.tun.MailboxDepth) {
			return i
		}
		if q := s.qOps.Load(); q > 0 && q+int64(len(sub)) > int64(e.tun.ShardOpBudget) {
			return i
		}
	}
	return -1
}

// applyAsync admits, sequences, and enqueues one batch, returning its
// completion future. It returns ErrClosed after close, ErrOverloaded
// under fast-fail backpressure; under blocking backpressure it parks
// until the target shards drain enough budget.
func (e *engine[O, T]) applyAsync(ops []O, urgent bool) (*Future, error) {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, ErrClosed
		}
		// Route under the sequencer lock: rebalance may swap the
		// router, and admission must charge the shards that will
		// actually receive the sub-batches.
		per := make([][]O, len(e.shards))
		for _, op := range ops {
			i := e.route(op)
			per[i] = append(per[i], op)
		}
		if e.overBudget(per) < 0 {
			f := e.submitLocked(ops, per, urgent)
			e.mu.Unlock()
			return f, nil
		}
		e.mu.Unlock()
		if e.tun.Backpressure == BackpressureFastFail {
			return nil, ErrOverloaded
		}
		// Park until some shard releases budget, then retry admission
		// from scratch (the router may have changed meanwhile). No
		// missed wakeup: releases decrement the counters before
		// broadcasting under admitMu, so either this re-check sees the
		// new budget or the broadcast happens after the Wait starts.
		// Every park is finite: over-budget means sub-batches are
		// queued, and their flush always broadcasts.
		e.admitMu.Lock()
		if e.overBudget(per) >= 0 {
			e.admitCond.Wait()
		}
		e.admitMu.Unlock()
	}
}

// submitLocked sequences an admitted batch: assign the seqno, append to
// the WAL hook, charge the budgets, hand the future to the resolver
// (FIFO = sequence order), and push the sub-batches. Caller holds e.mu;
// the pushes cannot block on budgeted traffic because the budget was
// just reserved (only unbudgeted markers can briefly occupy slots, and
// shards always drain those).
func (e *engine[O, T]) submitLocked(ops []O, per [][]O, urgent bool) *Future {
	f := &Future{
		seq:     e.seq,
		enq:     time.Now(),
		applied: make(chan struct{}),
		done:    make(chan struct{}),
	}
	e.seq++
	if e.hooks.logAppend != nil {
		e.hooks.logAppend(f.seq, ops)
	}
	var n int32
	for _, sub := range per {
		if len(sub) > 0 {
			n++
		}
	}
	f.pending.Store(n)
	if n == 0 {
		f.appliedAt = f.enq
		close(f.applied)
	}
	e.resolveq.push(f)
	for i, sub := range per {
		if len(sub) == 0 {
			continue
		}
		s := e.shards[i]
		s.qMsgs.Add(1)
		s.qOps.Add(int64(len(sub)))
		s.mail <- msg[O, T]{ops: sub, fut: f, urgent: urgent}
	}
	return f
}

// applyBatch is the synchronous write path: the async pipeline with the
// urgent flag plus Wait. Returns the batch's global sequence number;
// for durable stores the error is the commit (WAL fsync) error, with
// the seqno still valid.
func (e *engine[O, T]) applyBatch(ops []O) (uint64, error) {
	f, err := e.applyAsync(ops, true)
	if err != nil {
		return 0, err
	}
	a := f.Wait()
	return a.Seq, a.Err
}

// resolveLoop completes futures strictly in sequence order: wait for
// the batch to be fully applied, run the durable commit hook, stamp the
// ack. One goroutine per engine, fed FIFO from the sequencer.
func (e *engine[O, T]) resolveLoop() {
	defer e.resolveWg.Done()
	for {
		f, ok := e.resolveq.pop()
		if !ok {
			return
		}
		<-f.applied
		var err error
		if e.hooks.commit != nil {
			err = e.hooks.commit(f.seq)
		}
		f.ack = Ack{
			Seq:       f.seq,
			Err:       err,
			Enqueued:  f.enq,
			Flushed:   f.appliedAt,
			Committed: time.Now(),
		}
		close(f.done)
	}
}

// shardLoop drains the mailbox: write sub-batches are held to coalesce
// (flushing on the FlushOps size trigger, the FlushWait time trigger,
// an urgent sync writer, a marker, or mailbox close — markers always
// force a flush first so the global order stays exact) and applied in
// bulk; markers report the current state and, for rebalance, block
// until the replacement state arrives.
func (e *engine[O, T]) shardLoop(s *shard[O, T]) {
	defer e.wg.Done()
	var (
		held      []O       // coalesced ops, in arrival (= sequence) order
		futs      []*Future // one per held sub-batch
		urgent    bool      // a sync writer is waiting on a held sub-batch
		holdStart time.Time // when the oldest held sub-batch arrived
		deferred  msg[O, T] // marker met while draining greedily
		haveDef   bool

		lastPub    time.Time // when this shard last published its replica slot
		pendingPub bool      // a publish is owed once ReplicaRefresh elapses
	)
	// publish installs this shard's current state into the engine's
	// replica slot with a copy-on-write CAS (other shards race on their
	// own slots, never on this one, so the loop is short).
	publish := func() {
		for {
			old := e.pub.Load()
			np := &published[O, T]{
				states:   append([]T(nil), old.states...),
				versions: append([]uint64(nil), old.versions...),
				epochs:   append([]uint64(nil), old.epochs...),
				route:    old.route,
			}
			np.states[s.idx] = s.state
			np.versions[s.idx] = s.version
			np.epochs[s.idx]++
			if e.pub.CompareAndSwap(old, np) {
				break
			}
		}
		lastPub, pendingPub = time.Now(), false
	}
	// maybePublish publishes now, or defers to the idle timer while the
	// ReplicaRefresh window is still open.
	maybePublish := func() {
		if d := e.tun.ReplicaRefresh; d > 0 && time.Since(lastPub) < d {
			pendingPub = true
			return
		}
		publish()
	}
	accept := func(m msg[O, T]) {
		if len(futs) == 0 {
			holdStart = time.Now()
		}
		held = append(held, m.ops...)
		futs = append(futs, m.fut)
		urgent = urgent || m.urgent
	}
	flush := func() {
		if len(futs) == 0 {
			return
		}
		s.state = e.apply(s.idx, s.state, held)
		s.version += uint64(len(futs))
		now := time.Now()
		e.noteFlush(s, now.Sub(futs[0].enq))
		s.appliedMsgs.Add(uint64(len(futs)))
		s.appliedOps.Add(uint64(len(held)))
		for _, f := range futs {
			if f.pending.Add(-1) == 0 {
				f.appliedAt = now
				close(f.applied)
			}
		}
		nOps, nMsgs := len(held), len(futs)
		held, futs, urgent = nil, nil, false
		// Release the budget, then wake parked writers. The decrement
		// must happen-before the broadcast under admitMu — that pairing
		// is what makes blocked admission free of missed wakeups.
		s.qOps.Add(-int64(nOps))
		s.qMsgs.Add(-int64(nMsgs))
		e.admitMu.Lock()
		e.admitCond.Broadcast()
		e.admitMu.Unlock()
		maybePublish()
	}
	marker := func(m msg[O, T]) {
		m.snap <- shardState[T]{idx: s.idx, state: s.state, version: s.version}
		if m.install != nil {
			s.state = <-m.install
			s.version++
		}
	}
	for {
		var m msg[O, T]
		var ok bool
		switch {
		case haveDef:
			m, ok, haveDef = deferred, true, false
		case len(futs) == 0:
			if pendingPub {
				// A publish is owed: wait for more mail only until the
				// refresh window closes, then flush the replica slot.
				if wait := e.tun.ReplicaRefresh - time.Since(lastPub); wait <= 0 {
					publish()
					continue
				} else {
					t := time.NewTimer(wait)
					select {
					case m, ok = <-s.mail:
						t.Stop()
						if !ok {
							return
						}
					case <-t.C:
						publish()
						continue
					}
				}
			} else if m, ok = <-s.mail; !ok {
				return
			}
		default:
			// Ops are held. Sync writers and the size trigger flush
			// now; otherwise wait out the rest of the coalescing
			// window for more work.
			if urgent || len(held) >= e.tun.FlushOps {
				flush()
				continue
			}
			wait := e.tun.FlushWait - time.Since(holdStart)
			if wait <= 0 {
				flush()
				continue
			}
			t := time.NewTimer(wait)
			select {
			case m, ok = <-s.mail:
				t.Stop()
				if !ok {
					flush()
					return
				}
			case <-t.C:
				flush()
				continue
			}
		}
		if m.snap != nil {
			flush()
			marker(m)
			continue
		}
		accept(m)
		// Greedy drain: fold everything immediately available, up to
		// the size trigger, stopping at any marker.
	drain:
		for len(held) < e.tun.FlushOps {
			select {
			case m2, ok2 := <-s.mail:
				if !ok2 {
					flush()
					return
				}
				if m2.snap != nil {
					deferred, haveDef = m2, true
					break drain
				}
				accept(m2)
			default:
				break drain
			}
		}
	}
}

// noteFlush folds one flush's oldest-sub-batch latency into the shard's
// EWMA (alpha 1/8). Only the shard goroutine writes it.
func (e *engine[O, T]) noteFlush(s *shard[O, T], d time.Duration) {
	if d < 0 {
		d = 0
	}
	old := s.flushNanos.Load()
	if old == 0 {
		s.flushNanos.Store(d.Nanoseconds())
		return
	}
	s.flushNanos.Store(old - old/8 + d.Nanoseconds()/8)
}

// stats samples the per-shard pipeline counters.
func (e *engine[O, T]) stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStats{
			QueuedBatches:  s.qMsgs.Load(),
			QueuedOps:      s.qOps.Load(),
			AppliedBatches: s.appliedMsgs.Load(),
			AppliedOps:     s.appliedOps.Load(),
			FlushLatency:   time.Duration(s.flushNanos.Load()),
		}
	}
	return out
}

// snapshot pushes a marker into every mailbox at one sequencer point
// and assembles the states the markers observe: the store's contents
// after exactly the batches sequenced before seq. On a closed engine it
// returns ErrClosed, like every other entry point.
func (e *engine[O, T]) snapshot() (states []T, versions []uint64, seq uint64, route func(O) int, err error) {
	states, versions, seq, route, ok := e.trySnapshotWith(nil)
	if !ok {
		return nil, nil, 0, nil, ErrClosed
	}
	return states, versions, seq, route, nil
}

// trySnapshotWith additionally runs pre under the sequencer lock, after
// the markers are pushed: whatever pre does (the checkpoint protocol
// rotates the WAL generation) happens at exactly the snapshot's
// sequence point. Returns ok == false instead of snapshotting when the
// engine is closed — internal callers (the auto-checkpoint on the
// resolver, the auto-rebalance policy) race Close legitimately and must
// stand down rather than panic.
func (e *engine[O, T]) trySnapshotWith(pre func()) (states []T, versions []uint64, seq uint64, route func(O) int, ok bool) {
	n := len(e.shards)
	ch := make(chan shardState[T], n)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, nil, 0, nil, false
	}
	for _, s := range e.shards {
		s.mail <- msg[O, T]{snap: ch}
	}
	seq = e.seq
	route = e.route
	if pre != nil {
		pre()
	}
	e.mu.Unlock()
	states = make([]T, n)
	versions = make([]uint64, n)
	for i := 0; i < n; i++ {
		st := <-ch
		states[st.idx] = st.state
		versions[st.idx] = st.version
	}
	return states, versions, seq, route, true
}

// rebalance freezes the store at one sequencer point: every shard
// reports its state and blocks; redistribute maps the old states to new
// ones (and optionally a new router); the new states are installed and
// the shards resume. Writers queue behind the sequencer lock for the
// duration; readers of existing views are untouched. On a closed engine
// it returns ErrClosed without touching any shard; a redistribute that
// changes the shard count gets ErrRebalanceShards — the old states are
// reinstalled so the store keeps serving.
func (e *engine[O, T]) rebalance(redistribute func(states []T) ([]T, func(O) int)) error {
	n := len(e.shards)
	ch := make(chan shardState[T], n)
	installs := make([]chan T, n)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for i, s := range e.shards {
		installs[i] = make(chan T, 1)
		s.mail <- msg[O, T]{snap: ch, install: installs[i]}
	}
	states := make([]T, n)
	versions := make([]uint64, n)
	for i := 0; i < n; i++ {
		st := <-ch
		states[st.idx] = st.state
		versions[st.idx] = st.version
	}
	newStates, newRoute := redistribute(states)
	if len(newStates) != n {
		// Unfreeze with the old states (each install still bumps the
		// shard's version) before surfacing the error.
		for i := range installs {
			installs[i] <- states[i]
		}
		return ErrRebalanceShards
	}
	route := newRoute
	if route == nil {
		route = e.route
	}
	// Rewrite the replica vector before any shard resumes: every shard
	// is frozen at its marker, so no publish can race this store. Each
	// install bumps the shard version by one.
	old := e.pub.Load()
	np := &published[O, T]{
		states:   append([]T(nil), newStates...),
		versions: append([]uint64(nil), versions...),
		epochs:   append([]uint64(nil), old.epochs...),
		route:    route,
	}
	for i := range np.versions {
		np.versions[i]++
		np.epochs[i]++
	}
	e.pub.Store(np)
	for i := range installs {
		installs[i] <- newStates[i]
	}
	if newRoute != nil {
		e.route = newRoute
	}
	return nil
}

// readerView returns the current replica-publication snapshot, or
// ErrClosed after close. Lock-free: it never touches the sequencer, so
// replica reads scale independently of writers and snapshotters.
func (e *engine[O, T]) readerView() (*published[O, T], error) {
	if e.closedFl.Load() {
		return nil, ErrClosed
	}
	return e.pub.Load(), nil
}

// close shuts the pipeline down: new writes get ErrClosed, parked
// writers are woken into the error, shards flush everything held and
// exit, and the resolver drains the remaining futures — every future
// issued before close resolves.
func (e *engine[O, T]) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.closedFl.Store(true)
	for _, s := range e.shards {
		close(s.mail)
	}
	e.mu.Unlock()
	e.admitMu.Lock()
	e.admitCond.Broadcast()
	e.admitMu.Unlock()
	e.wg.Wait()
	e.resolveq.close()
	e.resolveWg.Wait()
}

func (e *engine[O, T]) numShards() int { return len(e.shards) }
