// Package serve is the sharded serving layer: it spreads a persistent
// pam structure across N goroutine-owned partitions so many writers and
// many readers can hit it concurrently, while every reader still sees a
// consistent whole-store state.
//
// # Architecture
//
// Each shard is one goroutine owning one persistent structure (a
// pam.AugMap for Store, a rangetree.Tree for PointStore) and an op
// mailbox. Writers never touch shard state: Apply splits a batch by the
// routing function under a global sequencer lock, pushes the per-shard
// sub-batches into the mailboxes, and waits for every involved shard to
// acknowledge. Shards drain their mailboxes, coalescing adjacent write
// sub-batches into larger bulk updates (MultiInsert/MultiDelete for
// maps), so a burst of small writes amortizes into the structures'
// parallel bulk machinery — the paper's "updates are sequentialized ...
// applied when needed in bulk" concurrency model, scaled out across
// partitions.
//
// Because the per-shard structures are persistent, a snapshot is
// zero-copy: Snapshot injects a marker into every mailbox at a single
// sequencer point and assembles the per-shard versions the markers
// observe. No writer is blocked for more than the marker push, and the
// returned view stays valid (and race-free to read) forever.
//
// # The snapshot-consistency guarantee
//
// Every write batch is assigned a position in one global sequence (its
// sequence number, returned by Apply) the moment it is submitted, and
// shards apply sub-batches in exactly that order. A snapshot taken at
// sequence position S (View.Seq reports S) contains exactly the batches
// sequenced before it:
//
//   - Atomicity: a batch is never partially visible — either all of its
//     per-shard effects are in the view or none are, even when the batch
//     spans shards.
//   - Prefix consistency: the view equals the state reached by applying
//     batches 0..S-1, in sequence order, to an initially empty store. No
//     gaps: a view can never show batch j without every batch i < j.
//   - Real-time bound: if Apply(b) returned before Snapshot was called,
//     then b's sequence number is below S, so b is visible. A batch
//     still in flight when the snapshot was taken may be included
//     (if it was sequenced before the marker) or not — never partially.
//
// Readers therefore observe the store as if all acknowledged writes and
// some subset of in-flight writes ran sequentially — the differential
// harness in harness_test.go checks exactly this against a sequential
// pam oracle, under -race, across thousands of randomized schedules.
//
// # Limits
//
// Updates to a single key are totally ordered, but Apply's global order
// is assigned at submission: two racing Apply calls may be sequenced in
// either order. Rebalance (range-sharded stores) briefly blocks writers
// and snapshotters — never readers of existing views — while entries
// move between shards; it changes no logical content and consumes no
// sequence number.
package serve

import "sync"

const (
	// mailCap is the per-shard mailbox depth: how many sub-batches may
	// queue before writers feel backpressure through the sequencer.
	mailCap = 64
	// maxCoalesce caps the ops a shard folds into one bulk apply, so a
	// deep mailbox cannot delay a pending snapshot marker indefinitely.
	maxCoalesce = 4096
)

// shardState is what a shard reports when it meets a snapshot or
// rebalance marker: its structure and its version (the count of applied
// sub-batches plus rebalance installs).
type shardState[T any] struct {
	idx     int
	state   T
	version uint64
}

// msg is one mailbox item: a write sub-batch (ops + done), a snapshot
// marker (snap), or a rebalance marker (snap + install).
type msg[O, T any] struct {
	ops     []O
	done    *sync.WaitGroup
	snap    chan<- shardState[T]
	install <-chan T
}

// shard is one partition: a mailbox plus the goroutine-owned structure.
// state and version are touched only by the shard goroutine.
type shard[O, T any] struct {
	idx     int
	mail    chan msg[O, T]
	state   T
	version uint64
}

// engine is the generic sharded serving core, shared by Store and
// PointStore: the sequencer, the shard goroutines, and the
// marker-based snapshot/rebalance protocol.
type engine[O, T any] struct {
	apply func(T, []O) T
	// logAppend, when non-nil, is called under the sequencer lock with
	// every batch in sequence order — the WAL hook: because the lock
	// serializes it with sequencing, log order is exactly sequence
	// order, and the durable layer's acknowledged prefix is gapless.
	logAppend func(seq uint64, ops []O)

	mu     sync.Mutex // the sequencer: guards seq, route, closed, mailbox pushes
	seq    uint64
	route  func(O) int
	shards []*shard[O, T]
	closed bool
	wg     sync.WaitGroup
}

func newEngine[O, T any](states []T, route func(O) int, apply func(T, []O) T) *engine[O, T] {
	return newEngineAt(states, route, apply, 0, nil)
}

// newEngineAt starts an engine whose next batch gets sequence number
// startSeq (recovery resumes the sequence where the replayed prefix
// ended) with an optional WAL hook.
func newEngineAt[O, T any](states []T, route func(O) int, apply func(T, []O) T, startSeq uint64, logAppend func(uint64, []O)) *engine[O, T] {
	e := &engine[O, T]{apply: apply, route: route, seq: startSeq, logAppend: logAppend}
	e.shards = make([]*shard[O, T], len(states))
	for i, st := range states {
		s := &shard[O, T]{idx: i, mail: make(chan msg[O, T], mailCap), state: st}
		e.shards[i] = s
		e.wg.Add(1)
		go e.shardLoop(s)
	}
	return e
}

// shardLoop drains the mailbox: write sub-batches are coalesced (up to
// maxCoalesce ops, stopping at any marker so the global order is
// preserved) and applied in bulk; markers report the current state and,
// for rebalance, block until the replacement state arrives.
func (e *engine[O, T]) shardLoop(s *shard[O, T]) {
	defer e.wg.Done()
	var held msg[O, T]
	haveHeld := false
	for {
		var m msg[O, T]
		if haveHeld {
			m, haveHeld = held, false
		} else {
			var ok bool
			if m, ok = <-s.mail; !ok {
				return
			}
		}
		if m.snap != nil {
			m.snap <- shardState[T]{idx: s.idx, state: s.state, version: s.version}
			if m.install != nil {
				s.state = <-m.install
				s.version++
			}
			continue
		}
		ops := m.ops
		dones := []*sync.WaitGroup{m.done}
	drain:
		for len(ops) < maxCoalesce {
			select {
			case m2, ok := <-s.mail:
				if !ok {
					break drain
				}
				if m2.snap != nil {
					held, haveHeld = m2, true
					break drain
				}
				ops = append(ops, m2.ops...)
				dones = append(dones, m2.done)
			default:
				break drain
			}
		}
		s.state = e.apply(s.state, ops)
		s.version += uint64(len(dones))
		for _, d := range dones {
			d.Done()
		}
	}
}

// applyBatch sequences one batch, pushes its per-shard sub-batches, and
// waits for every involved shard to apply them. Returns the batch's
// global sequence number.
func (e *engine[O, T]) applyBatch(ops []O) uint64 {
	var done sync.WaitGroup
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("serve: Apply on a closed store")
	}
	seq := e.seq
	e.seq++
	if e.logAppend != nil {
		e.logAppend(seq, ops)
	}
	per := make([][]O, len(e.shards))
	for _, op := range ops {
		i := e.route(op)
		per[i] = append(per[i], op)
	}
	for i, sub := range per {
		if len(sub) == 0 {
			continue
		}
		done.Add(1)
		e.shards[i].mail <- msg[O, T]{ops: sub, done: &done}
	}
	e.mu.Unlock()
	done.Wait()
	return seq
}

// snapshot pushes a marker into every mailbox at one sequencer point
// and assembles the states the markers observe: the store's contents
// after exactly the batches sequenced before seq.
func (e *engine[O, T]) snapshot() (states []T, versions []uint64, seq uint64, route func(O) int) {
	return e.snapshotWith(nil)
}

// snapshotWith additionally runs pre under the sequencer lock, after
// the markers are pushed: whatever pre does (the checkpoint protocol
// rotates the WAL generation) happens at exactly the snapshot's
// sequence point.
func (e *engine[O, T]) snapshotWith(pre func()) (states []T, versions []uint64, seq uint64, route func(O) int) {
	n := len(e.shards)
	ch := make(chan shardState[T], n)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("serve: Snapshot on a closed store")
	}
	for _, s := range e.shards {
		s.mail <- msg[O, T]{snap: ch}
	}
	seq = e.seq
	route = e.route
	if pre != nil {
		pre()
	}
	e.mu.Unlock()
	states = make([]T, n)
	versions = make([]uint64, n)
	for i := 0; i < n; i++ {
		st := <-ch
		states[st.idx] = st.state
		versions[st.idx] = st.version
	}
	return states, versions, seq, route
}

// rebalance freezes the store at one sequencer point: every shard
// reports its state and blocks; redistribute maps the old states to new
// ones (and optionally a new router); the new states are installed and
// the shards resume. Writers queue behind the sequencer lock for the
// duration; readers of existing views are untouched.
func (e *engine[O, T]) rebalance(redistribute func(states []T) ([]T, func(O) int)) {
	n := len(e.shards)
	ch := make(chan shardState[T], n)
	installs := make([]chan T, n)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		panic("serve: Rebalance on a closed store")
	}
	for i, s := range e.shards {
		installs[i] = make(chan T, 1)
		s.mail <- msg[O, T]{snap: ch, install: installs[i]}
	}
	states := make([]T, n)
	for i := 0; i < n; i++ {
		st := <-ch
		states[st.idx] = st.state
	}
	newStates, newRoute := redistribute(states)
	if len(newStates) != n {
		panic("serve: rebalance must preserve the shard count")
	}
	for i := range installs {
		installs[i] <- newStates[i]
	}
	if newRoute != nil {
		e.route = newRoute
	}
}

// close shuts the shard goroutines down after the mailboxes drain. The
// caller must have stopped submitting; Apply/Snapshot/Rebalance after
// close panic.
func (e *engine[O, T]) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.mail)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *engine[O, T]) numShards() int { return len(e.shards) }
