package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/pam"
	"repro/rangetree"
)

// Crash–recovery fault injection. Each schedule runs a durable store on
// a MemFS armed with a randomized kill point: after a random number of
// mutating filesystem operations, the filesystem "loses power" — the
// crashing write lands as a torn prefix and every later operation fails
// with ErrCrashed. The kill point lands anywhere: mid-batch flush,
// mid-checkpoint, mid-WAL append, mid-rename. Concurrent writers record
// every batch they submitted (sequence number, ops, whether the write
// was acknowledged). We then mount what DurableState says survived —
// synced bytes plus a random torn prefix of unsynced tails — reopen,
// and check the recovery contract:
//
//  1. the recovered store holds exactly the batches [0, R) for some R
//     (a gapless sequence prefix, verified against an oracle replay),
//  2. R covers every acknowledged batch (acked writes are never lost),
//  3. the recovered store is live: it accepts writes and checkpoints.
//
// A third of schedules additionally crash during recovery itself and
// then recover from that second wreckage; recovery must be idempotent.

// crashBatch records one submitted batch as seen by its writer.
type crashBatch struct {
	seq   uint64
	ops   []kvop
	acked bool
}

func runCrashSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fs := NewMemFS()
	if rng.Intn(5) > 0 { // 1 in 5 schedules runs with no kill point (clean shutdown)
		fs.SetKillPoint(int64(rng.Intn(140)), rand.New(rand.NewSource(seed^0x5deece66d)))
	}
	shards := 1 + rng.Intn(3)
	writers := 1 + rng.Intn(3)
	every := rng.Intn(4) * 3 // 0 disables automatic checkpoints
	var tuning []Tuning
	if rng.Intn(2) == 0 { // half the schedules run a non-default pipeline
		tuning = append(tuning, crashTuning(rng))
	}
	opts := crashOpts(seed) // half the schedules store compressed leaf blocks
	const keySpace = 24

	d, err := openDurSumOpts(opts, fs, shards, every, tuning...)
	if err != nil {
		t.Fatalf("initial open on an empty filesystem: %v", err)
	}

	// Pre-generate each writer's plan so goroutines never touch rng.
	type step struct {
		ops  []kvop
		ckpt bool
	}
	plans := make([][]step, writers)
	for w := range plans {
		for b := 2 + rng.Intn(8); b > 0; b-- {
			ops := make([]kvop, 1+rng.Intn(5))
			for i := range ops {
				k := uint64(rng.Intn(keySpace))
				if rng.Intn(3) == 0 {
					ops[i] = kvop{Kind: OpDelete, Key: k}
				} else {
					ops[i] = kvop{Kind: OpPut, Key: k, Val: int64(rng.Intn(100))}
				}
			}
			plans[w] = append(plans[w], step{ops: ops, ckpt: rng.Intn(4) == 0})
		}
	}

	var mu sync.Mutex
	var subs []crashBatch
	var wg sync.WaitGroup
	for w := range plans {
		wg.Add(1)
		go func(steps []step) {
			defer wg.Done()
			for _, s := range steps {
				seq, err := d.Apply(s.ops)
				mu.Lock()
				subs = append(subs, crashBatch{seq: seq, ops: s.ops, acked: err == nil})
				mu.Unlock()
				if err != nil {
					return // the filesystem is gone; this writer stops
				}
				if s.ckpt {
					if _, err := d.Checkpoint(); err != nil {
						return
					}
				}
			}
		}(plans[w])
	}
	wg.Wait()
	d.Close() // after a crash this fails with ErrCrashed; a clean run flushes

	// Mount the surviving bytes and recover.
	fs2 := NewMemFSFrom(fs.DurableState())
	if rng.Intn(3) == 0 {
		// Crash during recovery, then recover from the second wreckage.
		fs2.SetKillPoint(int64(rng.Intn(12)), rand.New(rand.NewSource(seed^0x2545f49)))
		d2, err := openDurSumOpts(opts, fs2, shards, 0)
		if err == nil {
			// The kill point is still armed; liveness probes may trip it.
			verifyCrashRecovery(t, d2, subs, true)
			d2.Close()
			return
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("recovery failed with a non-crash error: %v", err)
		}
		fs2 = NewMemFSFrom(fs2.DurableState())
	}
	d2, err := openDurSumOpts(opts, fs2, shards, 0)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	verifyCrashRecovery(t, d2, subs, false)
	d2.Close()
}

// crashOpts gives half the crash schedules compressed leaf blocks, so
// checkpoint, WAL replay, compaction, and torn-write recovery all run
// against packed payloads too. Recovery must reopen with the same
// options, so the choice is a pure function of the seed.
func crashOpts(seed int64) pam.Options {
	if seed%2 == 0 {
		return pam.Options{Compress: pam.CompressUint64()}
	}
	return pam.Options{}
}

// verifyCrashRecovery asserts the recovery contract against the record
// of submitted batches. If mayStillCrash, the filesystem is armed and
// liveness probes tolerate ErrCrashed.
func verifyCrashRecovery(t *testing.T, d *durSumStore, subs []crashBatch, mayStillCrash bool) {
	t.Helper()
	v, _ := d.Snapshot()
	r := v.Seq()

	sort.Slice(subs, func(i, j int) bool { return subs[i].seq < subs[j].seq })
	for i, b := range subs {
		if b.seq != uint64(i) {
			t.Fatalf("submitted sequence numbers not dense: position %d holds seq %d", i, b.seq)
		}
	}
	if r > uint64(len(subs)) {
		t.Fatalf("recovered prefix [0,%d) extends past the %d submitted batches", r, len(subs))
	}
	for _, b := range subs {
		if b.acked && b.seq >= r {
			t.Fatalf("acknowledged batch seq=%d lost: recovered prefix ends at %d", b.seq, r)
		}
	}

	oracle := map[uint64]int64{}
	for _, b := range subs[:r] {
		for _, op := range b.ops {
			if op.Kind == OpDelete {
				delete(oracle, op.Key)
			} else {
				oracle[op.Key] = op.Val
			}
		}
	}
	if got, want := v.Size(), int64(len(oracle)); got != want {
		t.Fatalf("recovered Size = %d, oracle prefix [0,%d) has %d keys", got, r, want)
	}
	var sum int64
	for k, want := range oracle {
		sum += want
		if got, ok := v.Find(k); !ok || got != want {
			t.Fatalf("recovered Find(%d) = %d,%v; oracle prefix [0,%d) says %d", k, got, ok, r, want)
		}
	}
	if got := v.AugVal(); got != sum {
		t.Fatalf("recovered AugVal = %d, oracle sum %d", got, sum)
	}

	// Liveness: the recovered store must accept writes and checkpoints.
	if _, err := d.Put(1<<40, 1); err != nil && !(mayStillCrash && errors.Is(err, ErrCrashed)) {
		t.Fatalf("post-recovery Put: %v", err)
	} else if err == nil {
		if _, err := d.Checkpoint(); err != nil && !(mayStillCrash && errors.Is(err, ErrCrashed)) {
			t.Fatalf("post-recovery Checkpoint: %v", err)
		}
	}
}

// TestCrashRecoverySchedules is the headline fault-injection run: 1000+
// randomized kill-point schedules (a reduced count under -short), each
// crashing the store at an arbitrary filesystem operation and checking
// that recovery restores exactly an acknowledged-covering prefix.
func TestCrashRecoverySchedules(t *testing.T) {
	n := 1100
	if testing.Short() {
		n = 150
	}
	for i := 0; i < n; i++ {
		seed := int64(i) + 1
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashSchedule(t, seed)
		})
	}
}

// crashTuning derives a randomized async-pipeline tuning for a crash
// schedule: small mailboxes and budgets keep the admission path hot,
// short flush windows keep shards holding async batches when the
// filesystem dies.
func crashTuning(rng *rand.Rand) Tuning {
	return Tuning{
		MailboxDepth:  1 + rng.Intn(4),
		ShardOpBudget: 2 + rng.Intn(24),
		FlushOps:      1 + rng.Intn(8),
		FlushWait:     time.Duration(rng.Intn(150)) * time.Microsecond,
	}
}

// runAsyncCrashSchedule is the asynchronous twin of runCrashSchedule:
// writers submit through ApplyAsync and keep going without waiting, so
// the kill point lands anywhere between a future's enqueue and the WAL
// fsync that would resolve it. Close resolves every outstanding future;
// a future that resolved with a nil Ack.Err is an acknowledged durable
// batch and must survive recovery exactly like a sync ack.
func runAsyncCrashSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fs := NewMemFS()
	if rng.Intn(5) > 0 {
		fs.SetKillPoint(int64(rng.Intn(140)), rand.New(rand.NewSource(seed^0x7f4a7c15)))
	}
	shards := 1 + rng.Intn(3)
	writers := 1 + rng.Intn(3)
	every := rng.Intn(4) * 3
	tun := crashTuning(rng)
	opts := crashOpts(seed)
	const keySpace = 24

	d, err := openDurSumOpts(opts, fs, shards, every, tun)
	if err != nil {
		t.Fatalf("initial open on an empty filesystem: %v", err)
	}

	type step struct {
		ops  []kvop
		ckpt bool
	}
	plans := make([][]step, writers)
	for w := range plans {
		for b := 2 + rng.Intn(8); b > 0; b-- {
			ops := make([]kvop, 1+rng.Intn(5))
			for i := range ops {
				k := uint64(rng.Intn(keySpace))
				if rng.Intn(3) == 0 {
					ops[i] = kvop{Kind: OpDelete, Key: k}
				} else {
					ops[i] = kvop{Kind: OpPut, Key: k, Val: int64(rng.Intn(100))}
				}
			}
			plans[w] = append(plans[w], step{ops: ops, ckpt: rng.Intn(5) == 0})
		}
	}

	type asyncSub struct {
		fut *Future
		ops []kvop
	}
	var mu sync.Mutex
	var pending []asyncSub
	var wg sync.WaitGroup
	for w := range plans {
		wg.Add(1)
		go func(steps []step) {
			defer wg.Done()
			for _, s := range steps {
				f, err := d.ApplyAsync(s.ops)
				if err != nil {
					// Block-mode admission on an open store never fails;
					// the WAL error surfaces in the Ack, not here.
					t.Errorf("ApplyAsync: %v", err)
					return
				}
				mu.Lock()
				pending = append(pending, asyncSub{fut: f, ops: s.ops})
				mu.Unlock()
				if s.ckpt {
					if _, err := d.Checkpoint(); err != nil {
						return // the filesystem is gone; this writer stops
					}
				}
			}
		}(plans[w])
	}
	wg.Wait()
	d.Close() // resolves every outstanding future, durably or with its error

	subs := make([]crashBatch, 0, len(pending))
	for _, s := range pending {
		a, ok := s.fut.TryAck()
		if !ok {
			t.Fatalf("future seq %d still unresolved after Close", s.fut.Seq())
		}
		if a.Seq != s.fut.Seq() {
			t.Fatalf("Ack.Seq %d != Future.Seq %d", a.Seq, s.fut.Seq())
		}
		if a.Err == nil && (a.Enqueued.After(a.Flushed) || a.Flushed.After(a.Committed)) {
			t.Fatalf("seq %d: timestamps out of order: enq %v flush %v commit %v",
				a.Seq, a.Enqueued, a.Flushed, a.Committed)
		}
		subs = append(subs, crashBatch{seq: s.fut.Seq(), ops: s.ops, acked: a.Err == nil})
	}

	d2, err := openDurSumOpts(opts, NewMemFSFrom(fs.DurableState()), shards, 0)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	verifyCrashRecovery(t, d2, subs, false)
	d2.Close()
}

// TestAsyncCrashRecoverySchedules runs the fault-injection harness with
// fire-and-forget writers: the recovery contract must hold with "acked"
// meaning "future resolved with nil error" instead of "Apply returned".
func TestAsyncCrashRecoverySchedules(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 120
	}
	for i := 0; i < n; i++ {
		seed := int64(i) + 40001
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAsyncCrashSchedule(t, seed)
		})
	}
}

// pointCrashBatch records one submitted point batch.
type pointCrashBatch struct {
	seq   uint64
	ops   []PointOp
	acked bool
}

func runPointCrashSchedule(t *testing.T, seed int64) {
	old := dynamic.SetFlushCap(4) // tiny buffer: checkpoints hit multi-level ladders
	defer dynamic.SetFlushCap(old)

	rng := rand.New(rand.NewSource(seed))
	fs := NewMemFS()
	if rng.Intn(5) > 0 {
		fs.SetKillPoint(int64(rng.Intn(120)), rand.New(rand.NewSource(seed^0x9e3779b9)))
	}
	shards := 1 + rng.Intn(2)
	splits := []float64{8, 16}[:shards-1]
	writers := 1 + rng.Intn(2)

	open := func(f FS) (*DurablePointStore, error) {
		return OpenDurablePointStore(pam.Options{}, splits, DurableConfig{FS: f})
	}
	d, err := open(fs)
	if err != nil {
		t.Fatalf("initial open: %v", err)
	}

	type step struct {
		ops  []PointOp
		ckpt bool
	}
	plans := make([][]step, writers)
	for w := range plans {
		for b := 2 + rng.Intn(6); b > 0; b-- {
			ops := make([]PointOp, 1+rng.Intn(4))
			for i := range ops {
				p := rangetree.Point{X: float64(rng.Intn(24)), Y: float64(rng.Intn(24))}
				if rng.Intn(4) == 0 {
					ops[i] = PointOp{Kind: OpDelete, P: p}
				} else {
					ops[i] = PointOp{Kind: OpPut, P: p, W: int64(1 + rng.Intn(3))}
				}
			}
			plans[w] = append(plans[w], step{ops: ops, ckpt: rng.Intn(3) == 0})
		}
	}

	var mu sync.Mutex
	var subs []pointCrashBatch
	var wg sync.WaitGroup
	for w := range plans {
		wg.Add(1)
		go func(steps []step) {
			defer wg.Done()
			for _, s := range steps {
				seq, err := d.Apply(s.ops)
				mu.Lock()
				subs = append(subs, pointCrashBatch{seq: seq, ops: s.ops, acked: err == nil})
				mu.Unlock()
				if err != nil {
					return
				}
				if s.ckpt {
					if _, err := d.Checkpoint(); err != nil {
						return
					}
				}
			}
		}(plans[w])
	}
	wg.Wait()
	d.Close()

	d2, err := open(NewMemFSFrom(fs.DurableState()))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer d2.Close()
	v, _ := d2.Snapshot()
	r := v.Seq()

	sort.Slice(subs, func(i, j int) bool { return subs[i].seq < subs[j].seq })
	for i, b := range subs {
		if b.seq != uint64(i) {
			t.Fatalf("submitted sequence numbers not dense at position %d: %d", i, b.seq)
		}
	}
	if r > uint64(len(subs)) {
		t.Fatalf("recovered prefix [0,%d) extends past %d submitted batches", r, len(subs))
	}
	for _, b := range subs {
		if b.acked && b.seq >= r {
			t.Fatalf("acknowledged point batch seq=%d lost: prefix ends at %d", b.seq, r)
		}
	}
	oracle := map[rangetree.Point]int64{}
	for _, b := range subs[:r] {
		for _, op := range b.ops {
			if op.Kind == OpDelete {
				delete(oracle, op.P)
			} else {
				oracle[op.P] += op.W
			}
		}
	}
	if got, want := v.Size(), int64(len(oracle)); got != want {
		t.Fatalf("recovered Size = %d, oracle prefix [0,%d) has %d points", got, r, want)
	}
	var sum int64
	for _, w := range oracle {
		sum += w
	}
	if got := v.QuerySum(everything); got != sum {
		t.Fatalf("recovered QuerySum = %d, oracle %d", got, sum)
	}
	for _, p := range v.ReportAll(everything) {
		if w, ok := oracle[p.Point]; !ok || w != p.W {
			t.Fatalf("recovered point (%v, %d); oracle %d,%v", p.Point, p.W, w, ok)
		}
	}
}

// TestPointCrashRecoverySchedules runs the fault-injection harness
// against the durable point store (full-ladder checkpoints + WAL).
func TestPointCrashRecoverySchedules(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		seed := int64(i) + 7001
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runPointCrashSchedule(t, seed)
		})
	}
}
