package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pam"
	"repro/rangetree"
)

// Self-healing durability: compaction, Merkle tamper evidence, and the
// scrub/repair pipeline. The deterministic tests pin each mechanism
// (bounded recovery after Compact, every-bit tamper detection, chain
// fallback, online scrub repair); the randomized schedules crash the
// store mid-compaction and mid-scrub with injected media corruption and
// assert the recovery contract: every injected corruption is repaired
// or reported, never silent.

func openDurCfg(fs FS, shards int, cfg DurableConfig) (*durSumStore, error) {
	cfg.FS = fs
	return OpenDurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, shards, mixHash, pam.Uint64Codec(), cfg)
}

// TestCompactBoundsRecovery is the bounded-recovery acceptance test:
// after many checkpoints of a churning store, recovery decodes the
// whole chain; after Compact it decodes O(live records), independent of
// the update history, and the superseded files are gone.
func TestCompactBoundsRecovery(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(17))
	const keySpace = 64
	for round := 0; round < 30; round++ {
		ops := make([]kvop, 32)
		for i := range ops {
			ops[i] = kvop{Kind: OpPut, Key: uint64(rng.Intn(keySpace)), Val: int64(rng.Intn(1000))}
		}
		applyAll(t, d, ops)
		if _, err := d.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", round, err)
		}
	}
	want, _ := d.Snapshot()

	pre, err := openDurSum(NewMemFSFrom(fs.DurableState()), 2, 0)
	if err != nil {
		t.Fatalf("pre-compact reopen: %v", err)
	}
	preRecs := pre.Recovery().ChainRecords
	pre.Close()

	cs, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !cs.Base {
		t.Fatal("Compact did not write a base checkpoint")
	}
	if cs.ChainRecords != cs.Records || cs.LiveRecords != cs.Records {
		t.Fatalf("compaction stats inconsistent: records %d, chain %d, live %d",
			cs.Records, cs.ChainRecords, cs.LiveRecords)
	}

	names, _ := fs.List()
	ckpts, walGens := parseDurableDir(names)
	if len(ckpts) != 1 || ckpts[0] != cs.Index {
		t.Fatalf("compaction left chain files: %v", ckpts)
	}
	for _, g := range walGens {
		if g < cs.Index {
			t.Fatalf("compaction left superseded WAL generation %d", g)
		}
	}

	post, err := openDurSum(NewMemFSFrom(fs.DurableState()), 2, 0)
	if err != nil {
		t.Fatalf("post-compact reopen: %v", err)
	}
	defer post.Close()
	rec := post.Recovery()
	if rec.ChainFiles != 1 {
		t.Fatalf("recovery after Compact decoded %d chain files, want 1", rec.ChainFiles)
	}
	// The record-counting proof: recovery now reads exactly the compacted
	// base — the live records — a fraction of the accumulated chain.
	if rec.ChainRecords != cs.Records {
		t.Fatalf("recovery decoded %d records, compaction wrote %d", rec.ChainRecords, cs.Records)
	}
	if 3*rec.ChainRecords >= preRecs {
		t.Fatalf("compaction did not bound recovery: %d records before, %d after", preRecs, rec.ChainRecords)
	}
	v, _ := post.Snapshot()
	if v.Seq() != want.Seq() || v.Size() != want.Size() || v.AugVal() != want.AugVal() {
		t.Fatalf("recovered (seq %d, size %d, sum %d), want (%d, %d, %d)",
			v.Seq(), v.Size(), v.AugVal(), want.Seq(), want.Size(), want.AugVal())
	}
}

// TestCompactDigestStable checks that the root digest is a pure content
// hash: compaction rewrites every record with fresh ids, and the digest
// must not move.
func TestCompactDigestStable(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	for i := uint64(0); i < 100; i++ {
		if _, err := d.Put(i, int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if i%20 == 0 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	before, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if before.Digest != after.Digest {
		t.Fatalf("compaction changed the content digest: %x -> %x", before.Digest, after.Digest)
	}
}

// TestMerkleTamperEveryBit is the tamper-evidence proof: flip one bit
// at EVERY byte position of a checkpoint's body (records, root ids,
// digests) and re-patch the CRC so the flip models an adversary or
// coordinated media error the checksum cannot see. Every such file must
// fail to decode — and at least one failure must be the Merkle digest
// check specifically, proving detection does not ride on framing luck.
func TestMerkleTamperEveryBit(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 1, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 40; i++ {
		if _, err := d.Put(i*7, int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	cs, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	d.Close()
	file, err := fs.ReadFile(ckptName(cs.Index))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// The body starts after the magic and the four header varints (seq,
	// shards, firstID, nRecords); the header is metadata outside the
	// Merkle tree, so the sweep starts past it.
	off := len(ckptMagic)
	for i := 0; i < 4; i++ {
		_, n := binary.Uvarint(file[off:])
		off += n
	}

	digestHits := 0
	for pos := off; pos < len(file)-4; pos++ {
		tampered := bytes.Clone(file)
		tampered[pos] ^= 1 << (pos % 8)
		binary.LittleEndian.PutUint32(tampered[len(tampered)-4:],
			crc32.ChecksumIEEE(tampered[:len(tampered)-4]))
		tb := pam.NewDecodeTable[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		_, _, derr := decodeStoreCheckpoint(tb, pam.Uint64Codec(), 1, tampered)
		if derr == nil {
			t.Fatalf("bit flip at byte %d (of %d) decoded cleanly past the CRC", pos, len(file))
		}
		if errors.Is(derr, ErrDigestMismatch) {
			digestHits++
		}
	}
	if digestHits == 0 {
		t.Fatal("no flip was caught by the Merkle digest — detection rides entirely on framing")
	}
}

// TestRecoveryFallbackRepairsChainTail pins the deterministic repair
// path: the newest chain file is corrupt, but the KeepGenerations WAL
// window lets recovery fall back to the previous checkpoint and replay
// forward — no acknowledged batch lost, corruption quarantined,
// Repaired reported.
func TestRecoveryFallbackRepairsChainTail(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 1, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 20; i++ {
		if _, err := d.Put(i, int64(i+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	for i := uint64(20); i < 40; i++ {
		if _, err := d.Put(i, int64(i+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	tail, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	for i := uint64(40); i < 50; i++ {
		if _, err := d.Put(i, int64(i+1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	d.Close()

	state := fs.DurableState()
	name := ckptName(tail.Index)
	state[name][len(state[name])-1] ^= 0xff // break the tail file's CRC

	d2, err := openDurSum(NewMemFSFrom(state), 1, 0)
	if err != nil {
		t.Fatalf("recovery with a corrupt chain tail failed: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if !rec.Repaired {
		t.Fatal("recovery did not report Repaired")
	}
	if len(rec.Quarantined) != 1 || rec.Quarantined[0] != name+quarantineSuffix {
		t.Fatalf("Quarantined = %v, want [%s]", rec.Quarantined, name+quarantineSuffix)
	}
	v, _ := d2.Snapshot()
	if v.Seq() != 50 || v.Size() != 50 {
		t.Fatalf("fallback recovered seq %d size %d, want 50/50", v.Seq(), v.Size())
	}
	for i := uint64(0); i < 50; i++ {
		if got, ok := v.Find(i); !ok || got != int64(i+1) {
			t.Fatalf("Find(%d) = %d,%v after fallback", i, got, ok)
		}
	}
}

// TestRecoveryRefusesSilentLoss is the never-silent guarantee: when the
// only checkpoint is corrupt AND the WAL generations that could rebuild
// its contents are gone, open must fail with ErrUnrecoverable rather
// than come up with a hole in the acknowledged sequence.
func TestRecoveryRefusesSilentLoss(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurCfg(fs, 1, DurableConfig{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 30; i++ {
		if _, err := d.Put(i, 1); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	cs, err := d.Compact() // drops every WAL generation below the base
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	d.Close()

	state := fs.DurableState()
	name := ckptName(cs.Index)
	state[name][len(state[name])-1] ^= 0xff

	if _, err := openDurSum(NewMemFSFrom(state), 1, 0); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("open with the only base corrupt and no covering WAL = %v, want ErrUnrecoverable", err)
	}
}

// TestVerifyReportsCorruption checks the synchronous check-only pass:
// clean store verifies clean, a flipped bit in a chain file is named,
// and Verify never modifies anything.
func TestVerifyReportsCorruption(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	for i := uint64(0); i < 50; i++ {
		if _, err := d.Put(i, int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if i%17 == 0 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if corrupt, err := d.Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("clean store Verify = %v, %v", corrupt, err)
	}

	names, _ := fs.List()
	ckpts, _ := parseDurableDir(names)
	victim := ckptName(ckpts[len(ckpts)-1])
	if !fs.CorruptFile(victim, rand.New(rand.NewSource(3))) {
		t.Fatalf("CorruptFile(%s) found nothing to flip", victim)
	}
	corrupt, err := d.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	found := false
	for _, name := range corrupt {
		if name == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("Verify after flipping %s reported %v", victim, corrupt)
	}
	if _, err := fs.ReadFile(victim); err != nil {
		t.Fatalf("Verify moved or deleted the corrupt file: %v", err)
	}
}

// TestScrubRepairsOnline runs the full self-healing loop live: a bit
// flips on "disk", the background scrubber finds it, quarantines the
// file, and compacts a fresh base from the in-memory state — all while
// the store keeps serving; the next recovery is clean.
func TestScrubRepairsOnline(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurCfg(fs, 2, DurableConfig{ScrubEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 40; i++ {
		if _, err := d.Put(i, int64(2*i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if i == 19 || i == 39 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	names, _ := fs.List()
	ckpts, _ := parseDurableDir(names)
	victim := ckptName(ckpts[len(ckpts)-1])
	if !fs.CorruptFile(victim, rand.New(rand.NewSource(9))) {
		t.Fatalf("CorruptFile(%s) found nothing to flip", victim)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := d.ScrubStats(); st.Repairs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never repaired; stats %+v, err %v", d.ScrubStats(), d.Err())
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("background error after repair: %v", err)
	}
	st := d.ScrubStats()
	if st.CorruptFound < 1 || st.Quarantined < 1 {
		t.Fatalf("scrub stats after repair: %+v", st)
	}
	if _, err := fs.ReadFile(victim + quarantineSuffix); err != nil {
		t.Fatalf("corrupt file was not quarantined: %v", err)
	}
	if corrupt, err := d.Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("store still corrupt after repair: %v, %v", corrupt, err)
	}
	// The store kept serving through the repair and the next recovery is
	// clean and complete.
	if _, err := d.Put(1000, 1); err != nil {
		t.Fatalf("Put after repair: %v", err)
	}
	d.Close()
	d2, err := openDurSum(NewMemFSFrom(fs.DurableState()), 2, 0)
	if err != nil {
		t.Fatalf("reopen after online repair: %v", err)
	}
	defer d2.Close()
	if len(d2.Recovery().Quarantined) != 0 {
		t.Fatalf("recovery after repair still found corruption: %v", d2.Recovery().Quarantined)
	}
	v, _ := d2.Snapshot()
	if v.Size() != 41 || v.Seq() != 41 {
		t.Fatalf("recovered size %d seq %d, want 41/41", v.Size(), v.Seq())
	}
	for i := uint64(0); i < 40; i++ {
		if got, ok := v.Find(i); !ok || got != int64(2*i) {
			t.Fatalf("Find(%d) = %d,%v after repair cycle", i, got, ok)
		}
	}
}

// TestScrubRepairsSealedWAL checks the scrubber also covers sealed WAL
// generations: a flip in a kept (sealed, pre-checkpoint) generation is
// found and repaired by compaction, which retires the damaged file.
func TestScrubRepairsSealedWAL(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurCfg(fs, 1, DurableConfig{ScrubEvery: time.Millisecond, KeepGenerations: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 20; i++ {
		if _, err := d.Put(i, 1); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := uint64(20); i < 30; i++ {
		if _, err := d.Put(i, 1); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := d.Checkpoint(); err != nil { // seals the generation holding batches 20..29
		t.Fatalf("Checkpoint: %v", err)
	}
	names, _ := fs.List()
	_, gens := parseDurableDir(names)
	if len(gens) < 2 {
		t.Fatalf("expected kept WAL generations, have %v", gens)
	}
	victim := walName(gens[0])
	if !fs.CorruptFile(victim, rand.New(rand.NewSource(4))) {
		t.Fatalf("CorruptFile(%s) found nothing to flip", victim)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := d.ScrubStats(); st.Repairs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never repaired; stats %+v, err %v", d.ScrubStats(), d.Err())
		}
		time.Sleep(time.Millisecond)
	}
	d.Close()
	d2, err := openDurSum(NewMemFSFrom(fs.DurableState()), 1, 0)
	if err != nil {
		t.Fatalf("reopen after WAL repair: %v", err)
	}
	defer d2.Close()
	v, _ := d2.Snapshot()
	if v.Size() != 30 {
		t.Fatalf("recovered size %d, want 30", v.Size())
	}
}

// TestPointCheckpointTamper pins the point-store analogue: the
// whole-file digest catches a flip the adversary hid from the CRC, and
// recovery falls back to the older kept checkpoint plus WAL replay.
func TestPointCheckpointTamper(t *testing.T) {
	fs := NewMemFS()
	open := func(f FS) (*DurablePointStore, error) {
		return OpenDurablePointStore(pam.Options{}, []float64{8}, DurableConfig{FS: f})
	}
	d, err := open(fs)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := d.Insert(rangetree.Point{X: float64(i), Y: float64(i % 5)}, 1); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	for i := 20; i < 30; i++ {
		if _, err := d.Insert(rangetree.Point{X: float64(i), Y: 1}, 2); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	tail, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	d.Close()

	state := fs.DurableState()
	name := ckptName(tail.Index)
	// Flip a body bit and re-patch the CRC: only the sha256 digest can
	// catch this.
	data := state[name]
	data[len(ptCkptMagic)+2] ^= 0x01
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	if _, _, _, derr := decodePointCheckpoint(rangetree.New(pam.Options{}), 2, data); !errors.Is(derr, ErrDigestMismatch) {
		t.Fatalf("decode of CRC-repaired tamper = %v, want ErrDigestMismatch", derr)
	}

	d2, err := open(NewMemFSFrom(state))
	if err != nil {
		t.Fatalf("recovery with tampered checkpoint: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if !rec.Repaired || len(rec.Quarantined) != 1 {
		t.Fatalf("recovery stats %+v, want Repaired with one quarantine", rec)
	}
	v, _ := d2.Snapshot()
	if v.Size() != 30 || v.QuerySum(everything) != 40 {
		t.Fatalf("fallback recovered size %d sum %d, want 30/40", v.Size(), v.QuerySum(everything))
	}
}

// TestTmpSweepOnOpen checks satellite recovery hygiene: orphaned *.tmp
// scratch from a crash mid-publish is deleted on open.
func TestTmpSweepOnOpen(t *testing.T) {
	state := map[string][]byte{
		ckptTmpName: []byte("half a checkpoint"),
		"extra.tmp": []byte("junk"),
		walTmpName:  []byte("half a wal trim"),
	}
	fs := NewMemFSFrom(state)
	d, err := openDurSum(fs, 1, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	names, _ := fs.List()
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			t.Fatalf("%s survived the open sweep (files: %v)", name, names)
		}
	}
}

// verifyCrashPrefix is the relaxed recovery contract used when injected
// media corruption was REPORTED (quarantine evidence on disk or in the
// recovery stats): with the only witness of some acknowledged batches
// destroyed, recovery may come up at a shorter prefix — but that prefix
// must still be an exact oracle replay (never wrong, never invented),
// and the store must stay live.
func verifyCrashPrefix(t *testing.T, d *durSumStore, subs []crashBatch) {
	t.Helper()
	v, _ := d.Snapshot()
	r := v.Seq()
	sort.Slice(subs, func(i, j int) bool { return subs[i].seq < subs[j].seq })
	for i, b := range subs {
		if b.seq != uint64(i) {
			t.Fatalf("submitted sequence numbers not dense: position %d holds seq %d", i, b.seq)
		}
	}
	if r > uint64(len(subs)) {
		t.Fatalf("recovered prefix [0,%d) extends past the %d submitted batches", r, len(subs))
	}
	oracle := map[uint64]int64{}
	for _, b := range subs[:r] {
		for _, op := range b.ops {
			if op.Kind == OpDelete {
				delete(oracle, op.Key)
			} else {
				oracle[op.Key] = op.Val
			}
		}
	}
	if got, want := v.Size(), int64(len(oracle)); got != want {
		t.Fatalf("recovered Size = %d, oracle prefix [0,%d) has %d keys", got, r, want)
	}
	var sum int64
	for k, want := range oracle {
		sum += want
		if got, ok := v.Find(k); !ok || got != want {
			t.Fatalf("recovered Find(%d) = %d,%v; oracle prefix [0,%d) says %d", k, got, ok, r, want)
		}
	}
	if got := v.AugVal(); got != sum {
		t.Fatalf("recovered AugVal = %d, oracle sum %d", got, sum)
	}
	if _, err := d.Put(1<<40, 1); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("post-recovery Checkpoint: %v", err)
	}
}

// quarantineEvidence reports whether the recovery (or an earlier
// scrubber repair whose quarantine rename survived the crash) left a
// durable report of corruption. Without such evidence, any data loss
// would be silent and the full contract must hold.
func quarantineEvidence(fs FS, rec RecoveryStats) bool {
	if len(rec.Quarantined) > 0 {
		return true
	}
	names, err := fs.List()
	if err != nil {
		return false
	}
	for _, name := range names {
		if strings.HasSuffix(name, quarantineSuffix) {
			return true
		}
	}
	return false
}

// assertNoTmpFiles asserts recovery left no *.tmp scratch behind — the
// crash-schedule form of the sweep guarantee.
func assertNoTmpFiles(t *testing.T, fs FS) {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		return // the probe filesystem crashed again; nothing to check
	}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			t.Fatalf("%s survived recovery (files: %v)", name, names)
		}
	}
}

// runCompactCrashSchedule crashes a store that checkpoints and compacts
// aggressively, optionally flips bits in the surviving checkpoint files
// (media corruption on top of the crash), and then requires recovery to
// either restore the full contract or refuse loudly.
func runCompactCrashSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fs := NewMemFS()
	if rng.Intn(5) > 0 {
		fs.SetKillPoint(int64(rng.Intn(220)), rand.New(rand.NewSource(seed^0x6c62272e)))
	}
	shards := 1 + rng.Intn(3)
	cfg := DurableConfig{
		CheckpointEvery: 2 + rng.Intn(4),
		CompactEvery:    1 + rng.Intn(3),
		KeepGenerations: 1 + rng.Intn(2),
	}
	if rng.Intn(3) == 0 {
		cfg.CompactDeadRatio = 0.3
	}
	const keySpace = 24
	d, err := openDurCfg(fs, shards, cfg)
	if err != nil {
		t.Fatalf("initial open: %v", err)
	}

	type step struct {
		ops     []kvop
		ckpt    bool
		compact bool
	}
	writers := 1 + rng.Intn(3)
	plans := make([][]step, writers)
	for w := range plans {
		for b := 2 + rng.Intn(10); b > 0; b-- {
			ops := make([]kvop, 1+rng.Intn(5))
			for i := range ops {
				k := uint64(rng.Intn(keySpace))
				if rng.Intn(3) == 0 {
					ops[i] = kvop{Kind: OpDelete, Key: k}
				} else {
					ops[i] = kvop{Kind: OpPut, Key: k, Val: int64(rng.Intn(100))}
				}
			}
			plans[w] = append(plans[w], step{ops: ops, ckpt: rng.Intn(4) == 0, compact: rng.Intn(6) == 0})
		}
	}

	var mu sync.Mutex
	var subs []crashBatch
	var wg sync.WaitGroup
	for w := range plans {
		wg.Add(1)
		go func(steps []step) {
			defer wg.Done()
			for _, s := range steps {
				seq, err := d.Apply(s.ops)
				mu.Lock()
				subs = append(subs, crashBatch{seq: seq, ops: s.ops, acked: err == nil})
				mu.Unlock()
				if err != nil {
					return
				}
				if s.ckpt {
					if _, err := d.Checkpoint(); err != nil {
						return
					}
				}
				if s.compact {
					if _, err := d.Compact(); err != nil {
						return
					}
				}
			}
		}(plans[w])
	}
	wg.Wait()
	d.Close()

	// Mount the crash image; some schedules additionally flip bits in
	// surviving checkpoint files — silent media damage the crash model
	// alone cannot produce.
	state := fs.DurableState()
	flipped := false
	if rng.Intn(2) == 0 {
		var names []string
		for name := range state {
			names = append(names, name)
		}
		ckpts, _ := parseDurableDir(names)
		for flips := 1 + rng.Intn(2); flips > 0 && len(ckpts) > 0; flips-- {
			name := ckptName(ckpts[rng.Intn(len(ckpts))])
			data := state[name]
			if len(data) == 0 {
				continue
			}
			bit := rng.Intn(len(data) * 8)
			data[bit/8] ^= 1 << (bit % 8)
			flipped = true
		}
	}

	fs2 := NewMemFSFrom(state)
	d2, err := openDurCfg(fs2, shards, DurableConfig{})
	if err != nil {
		// A loud refusal is a legitimate outcome only when corruption was
		// injected; a plain crash must always recover.
		if !flipped {
			t.Fatalf("recovery without injected corruption failed: %v", err)
		}
		return
	}
	// Open succeeded. If injected corruption was REPORTED (quarantined),
	// recovery may have fallen back to a shorter — but still exact —
	// prefix; with no report, any loss would be silent and the full
	// acked-coverage contract must hold. Either way no scratch survives.
	rec := d2.Recovery()
	if flipped && quarantineEvidence(fs2, rec) {
		if !rec.Repaired && len(rec.Quarantined) > 0 {
			t.Fatal("recovery quarantined files without reporting Repaired")
		}
		verifyCrashPrefix(t, d2, subs)
	} else {
		verifyCrashRecovery(t, d2, subs, false)
	}
	assertNoTmpFiles(t, fs2)
	d2.Close()
}

// TestCompactCrashSchedules is the compaction fault-injection run:
// randomized kill points landing mid-compaction (and everywhere else)
// with bit-flip media corruption layered on half the schedules. Together
// with TestScrubCrashSchedules this is the 1000+-schedule self-healing
// acceptance run.
func TestCompactCrashSchedules(t *testing.T) {
	n := 800
	if testing.Short() {
		n = 100
	}
	for i := 0; i < n; i++ {
		seed := int64(i) + 90001
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCompactCrashSchedule(t, seed)
		})
	}
}

// runScrubCrashSchedule crashes a store while the background scrubber
// races the workload — including schedules where a bit flips mid-run
// and the kill point lands inside the scrubber's quarantine+compact
// repair. Recovery must restore the contract or refuse loudly.
func runScrubCrashSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fs := NewMemFS()
	if rng.Intn(4) > 0 {
		fs.SetKillPoint(int64(rng.Intn(200)), rand.New(rand.NewSource(seed^0x1b873593)))
	}
	shards := 1 + rng.Intn(2)
	cfg := DurableConfig{
		CheckpointEvery: 2 + rng.Intn(3),
		KeepGenerations: 1 + rng.Intn(2),
		ScrubEvery:      time.Duration(200+rng.Intn(800)) * time.Microsecond,
	}
	if rng.Intn(2) == 0 {
		cfg.CompactEvery = 1 + rng.Intn(2)
	}
	const keySpace = 24
	d, err := openDurCfg(fs, shards, cfg)
	if err != nil {
		t.Fatalf("initial open: %v", err)
	}

	corruptRng := rand.New(rand.NewSource(seed ^ 0x85ebca6b))
	corrupted := false
	corruptOne := func() {
		names, err := fs.List()
		if err != nil {
			return
		}
		ckpts, _ := parseDurableDir(names)
		if len(ckpts) == 0 {
			return
		}
		if fs.CorruptFile(ckptName(ckpts[corruptRng.Intn(len(ckpts))]), corruptRng) {
			corrupted = true
		}
	}

	var subs []crashBatch
	steps := 6 + rng.Intn(14)
	for b := 0; b < steps; b++ {
		ops := make([]kvop, 1+rng.Intn(5))
		for i := range ops {
			k := uint64(rng.Intn(keySpace))
			if rng.Intn(3) == 0 {
				ops[i] = kvop{Kind: OpDelete, Key: k}
			} else {
				ops[i] = kvop{Kind: OpPut, Key: k, Val: int64(rng.Intn(100))}
			}
		}
		seq, err := d.Apply(ops)
		subs = append(subs, crashBatch{seq: seq, ops: ops, acked: err == nil})
		if err != nil {
			break
		}
		if b == steps/3 {
			corruptOne() // media flip mid-run; the scrubber races to find it
		}
		if rng.Intn(3) == 0 {
			time.Sleep(time.Duration(rng.Intn(1500)) * time.Microsecond) // let scrub passes land
		}
	}
	time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
	d.Close()

	// A repair may have already compacted the corruption away before the
	// crash; either way the on-disk image must recover or refuse loudly.
	fs2 := NewMemFSFrom(fs.DurableState())
	d2, err := openDurCfg(fs2, shards, DurableConfig{})
	if err != nil {
		if !corrupted {
			t.Fatalf("recovery without injected corruption failed: %v", err)
		}
		return
	}
	if corrupted && quarantineEvidence(fs2, d2.Recovery()) {
		verifyCrashPrefix(t, d2, subs)
	} else {
		verifyCrashRecovery(t, d2, subs, false)
	}
	assertNoTmpFiles(t, fs2)
	d2.Close()
}

// TestScrubCrashSchedules crashes stores mid-scrub and mid-repair with
// live media corruption; see runScrubCrashSchedule.
func TestScrubCrashSchedules(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 50
	}
	for i := 0; i < n; i++ {
		seed := int64(i) + 130001
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runScrubCrashSchedule(t, seed)
		})
	}
}

// TestVerifyFilesStructural drives the codec-independent VerifyFiles
// (the pamverify entry point): clean directories verify clean, flips in
// checkpoints and sealed WAL generations are named, and a torn tail in
// the newest generation is tolerated while mid-file damage is not.
func TestVerifyFilesStructural(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 60; i++ {
		if _, err := d.Put(i, int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if i%25 == 0 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	d.Close()

	rep, err := VerifyFiles(fs)
	if err != nil {
		t.Fatalf("VerifyFiles: %v", err)
	}
	if len(rep.Corrupt) != 0 || rep.Files == 0 || rep.Bytes == 0 {
		t.Fatalf("clean dir: %+v", rep)
	}

	state := fs.DurableState()
	names, _ := fs.List()
	ckpts, gens := parseDurableDir(names)

	// A torn tail in the NEWEST generation is crash debris, not damage.
	last := walName(gens[len(gens)-1])
	if n := len(state[last]); n > 3 {
		torn := map[string][]byte{}
		for k, v := range state {
			torn[k] = bytes.Clone(v)
		}
		torn[last] = torn[last][:n-3]
		rep, err := VerifyFiles(NewMemFSFrom(torn))
		if err != nil || len(rep.Corrupt) != 0 {
			t.Fatalf("torn newest generation flagged: %+v, %v", rep, err)
		}
	}

	// A flipped checkpoint bit is named.
	bad := map[string][]byte{}
	for k, v := range state {
		bad[k] = bytes.Clone(v)
	}
	victim := ckptName(ckpts[len(ckpts)-1])
	bad[victim][7] ^= 0x40
	rep, err = VerifyFiles(NewMemFSFrom(bad))
	if err != nil {
		t.Fatalf("VerifyFiles: %v", err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != victim {
		t.Fatalf("flipped %s, VerifyFiles reported %v", victim, rep.Corrupt)
	}
}
