package serve

import (
	"slices"
	"sync"
	"testing"

	"repro/internal/seq"
	"repro/pam"
	"repro/rangetree"
)

type sumStore = Store[uint64, int64, int64, pam.SumEntry[uint64, int64]]
type sumView = View[uint64, int64, int64, pam.SumEntry[uint64, int64]]
type kvop = Op[uint64, int64]

// mixHash is the shard hash used throughout the tests: the shared
// splitmix64 finalizer.
var mixHash = seq.Mix64

func newHash(t testing.TB, shards int) *sumStore {
	s, err := NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, shards, mixHash)
	if err != nil {
		t.Fatalf("NewHashStore: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func newRange(t testing.TB, splits ...uint64) *sumStore {
	s := NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, splits)
	t.Cleanup(s.Close)
	return s
}

func viewEntries(v sumView) []pam.KV[uint64, int64] { return v.Entries() }

func TestStoreBasics(t *testing.T) {
	for name, s := range map[string]*sumStore{
		"hash":  newHash(t, 4),
		"range": newRange(t, 100, 200, 300),
	} {
		t.Run(name, func(t *testing.T) {
			if s.NumShards() != 4 {
				t.Fatalf("NumShards = %d", s.NumShards())
			}
			seq0, err := s.Apply([]kvop{
				{Kind: OpPut, Key: 42, Val: 1},
				{Kind: OpPut, Key: 150, Val: 2},
				{Kind: OpPut, Key: 250, Val: 3},
				{Kind: OpPut, Key: 350, Val: 4},
			})
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			seq1, err := s.Put(42, 10)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			if seq1 <= seq0 {
				t.Fatalf("sequence not increasing: %d then %d", seq0, seq1)
			}
			s.Delete(250)
			s.Delete(9999) // absent: no-op

			v, _ := s.Snapshot()
			if got := v.Size(); got != 3 {
				t.Fatalf("Size = %d", got)
			}
			if val, ok := v.Find(42); !ok || val != 10 {
				t.Fatalf("Find(42) = %d, %v", val, ok)
			}
			if v.Contains(250) {
				t.Fatal("deleted key still present")
			}
			if got := v.AugVal(); got != 16 {
				t.Fatalf("AugVal = %d", got)
			}
			if got := v.AugRange(0, 200); got != 12 {
				t.Fatalf("AugRange(0,200) = %d", got)
			}
			wantKeys := []uint64{42, 150, 350}
			if got := v.Keys(); !slices.Equal(got, wantKeys) {
				t.Fatalf("Keys = %v", got)
			}
			var ranged []uint64
			v.ForEachRange(100, 360, func(k uint64, _ int64) bool {
				ranged = append(ranged, k)
				return true
			})
			if !slices.Equal(ranged, []uint64{150, 350}) {
				t.Fatalf("ForEachRange = %v", ranged)
			}
			// Early-exit iteration.
			var first []uint64
			v.ForEach(func(k uint64, _ int64) bool {
				first = append(first, k)
				return len(first) < 2
			})
			if !slices.Equal(first, []uint64{42, 150}) {
				t.Fatalf("early-exit ForEach = %v", first)
			}
			if got := len(v.Versions()); got != 4 {
				t.Fatalf("Versions len = %d", got)
			}
		})
	}
}

// TestBatchOrderWithinBatch checks that ops of one batch apply in slice
// order: put-delete-put on one key must leave the last value.
func TestBatchOrderWithinBatch(t *testing.T) {
	s := newHash(t, 2)
	s.Apply([]kvop{
		{Kind: OpPut, Key: 7, Val: 1},
		{Kind: OpDelete, Key: 7},
		{Kind: OpPut, Key: 7, Val: 3},
		{Kind: OpPut, Key: 7, Val: 4},
	})
	v, _ := s.Snapshot()
	if val, ok := v.Find(7); !ok || val != 4 {
		t.Fatalf("Find(7) = %d, %v, want 4", val, ok)
	}
	s.Apply([]kvop{
		{Kind: OpPut, Key: 8, Val: 1},
		{Kind: OpDelete, Key: 8},
	})
	if v2, _ := s.Snapshot(); v2.Contains(8) {
		t.Fatal("put-then-delete left the key present")
	}
}

// TestSnapshotImmutable checks that a view never changes after later
// writes — the zero-copy persistence guarantee.
func TestSnapshotImmutable(t *testing.T) {
	s := newRange(t, 500)
	for i := uint64(0); i < 100; i++ {
		s.Put(i*10, int64(i))
	}
	v1, _ := s.Snapshot()
	sum1 := v1.AugVal()
	n1 := v1.Size()
	for i := uint64(0); i < 100; i++ {
		s.Delete(i * 10)
	}
	if v1.Size() != n1 || v1.AugVal() != sum1 {
		t.Fatal("snapshot changed after later deletes")
	}
	if v2, _ := s.Snapshot(); v2.Size() != 0 {
		t.Fatalf("store size after deleting all = %d", v2.Size())
	}
}

// TestSeqPrefix checks the Seq semantics: a snapshot taken after k
// acknowledged batches (no concurrency) has Seq == k and exactly their
// contents.
func TestSeqPrefix(t *testing.T) {
	s := newHash(t, 3)
	for i := uint64(0); i < 10; i++ {
		seq, err := s.Put(i, int64(i))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if seq != i {
			t.Fatalf("batch %d got seq %d", i, seq)
		}
		v, _ := s.Snapshot()
		if v.Seq() != i+1 {
			t.Fatalf("snapshot after batch %d has Seq %d", i, v.Seq())
		}
		if got := v.Size(); got != int64(i+1) {
			t.Fatalf("snapshot after batch %d has %d entries", i, got)
		}
	}
}

func TestRebalanceEqualizes(t *testing.T) {
	// Splits at 1000,2000,3000 but all keys below 100: everything lands
	// in shard 0.
	s := newRange(t, 1000, 2000, 3000)
	const n = 64
	for i := uint64(0); i < n; i++ {
		s.Put(i, 1)
	}
	v, _ := s.Snapshot()
	if got := v.Shard(0).Size(); got != n {
		t.Fatalf("pre-rebalance shard 0 holds %d", got)
	}
	if ok, err := s.Rebalance(); err != nil || !ok {
		t.Fatalf("range store refused to rebalance: %v, %v", ok, err)
	}
	v, _ = s.Snapshot()
	if got := v.Size(); got != n {
		t.Fatalf("rebalance changed Size to %d", got)
	}
	lo, hi := int64(1<<62), int64(0)
	for i := 0; i < v.NumShards(); i++ {
		sz := v.Shard(i).Size()
		lo, hi = min(lo, sz), max(hi, sz)
	}
	if hi-lo > 1 {
		t.Fatalf("shard sizes spread %d..%d after rebalance", lo, hi)
	}
	// Contents and routing survive: every key still found, iteration sorted.
	for i := uint64(0); i < n; i++ {
		if !v.Contains(i) {
			t.Fatalf("key %d lost by rebalance", i)
		}
	}
	keys := v.Keys()
	if !slices.IsSorted(keys) || len(keys) != n {
		t.Fatalf("keys after rebalance: %v", keys)
	}
	// Writes after rebalance route to the new shards.
	s.Put(5, 100)
	v, _ = s.Snapshot()
	if val, _ := v.Find(5); val != 100 {
		t.Fatal("post-rebalance write lost")
	}
	// Hash stores refuse.
	if ok, _ := newHash(t, 2).Rebalance(); ok {
		t.Fatal("hash store claimed to rebalance")
	}
}

func TestEmptyStoreAndEmptyBatch(t *testing.T) {
	s := newRange(t, 50)
	v, _ := s.Snapshot()
	if v.Size() != 0 || v.Contains(1) {
		t.Fatal("empty store not empty")
	}
	v.ForEach(func(uint64, int64) bool { t.Fatal("visited an entry of an empty view"); return false })
	if got := len(viewEntries(v)); got != 0 {
		t.Fatalf("Entries len %d", got)
	}
	// An empty batch still gets a sequence slot and acks immediately.
	seq, err := s.Apply(nil)
	if err != nil {
		t.Fatalf("empty Apply: %v", err)
	}
	if v2, _ := s.Snapshot(); v2.Seq() != seq+1 {
		t.Fatal("empty batch did not advance the sequence")
	}
	if ok, err := s.Rebalance(); err != nil || !ok { // rebalancing an empty range store is a no-op
		t.Fatal("empty range store refused to rebalance")
	}
	if v2, _ := s.Snapshot(); v2.Size() != 0 {
		t.Fatal("rebalance invented entries")
	}
}

func TestConcurrentWritersDisjointKeys(t *testing.T) {
	s := newHash(t, 4)
	const writers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Put(uint64(w*per+i), 1)
			}
		}(w)
	}
	wg.Wait()
	v, _ := s.Snapshot()
	if got := v.Size(); got != writers*per {
		t.Fatalf("Size = %d, want %d", got, writers*per)
	}
	if got := v.AugVal(); got != writers*per {
		t.Fatalf("AugVal = %d", got)
	}
	if v.Seq() != writers*per {
		t.Fatalf("Seq = %d", v.Seq())
	}
}

func TestPointStoreBasics(t *testing.T) {
	s := NewPointStore(pam.Options{}, []float64{100, 200})
	t.Cleanup(s.Close)
	if s.NumShards() != 3 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	s.Apply([]PointOp{
		InsertPoint(rangetree.Point{X: 50, Y: 10}, 5),
		InsertPoint(rangetree.Point{X: 150, Y: 20}, 7),
		InsertPoint(rangetree.Point{X: 250, Y: 30}, 9),
	})
	s.Insert(rangetree.Point{X: 50, Y: 10}, 5) // weights add
	s.Delete(rangetree.Point{X: 250, Y: 30})

	v, _ := s.Snapshot()
	if got := v.Size(); got != 2 {
		t.Fatalf("Size = %d", got)
	}
	if w, ok := v.Weight(rangetree.Point{X: 50, Y: 10}); !ok || w != 10 {
		t.Fatalf("Weight = %d, %v", w, ok)
	}
	if v.Contains(rangetree.Point{X: 250, Y: 30}) {
		t.Fatal("deleted point still present")
	}
	all := rangetree.Rect{XLo: 0, XHi: 300, YLo: 0, YHi: 100}
	if got := v.QuerySum(all); got != 17 {
		t.Fatalf("QuerySum = %d", got)
	}
	if got := v.QueryCount(all); got != 2 {
		t.Fatalf("QueryCount = %d", got)
	}
	rep := v.ReportAll(all)
	if len(rep) != 2 || rep[0].X != 50 || rep[1].X != 150 {
		t.Fatalf("ReportAll = %v", rep)
	}
	// Cross-shard rectangle.
	if got := v.QuerySum(rangetree.Rect{XLo: 100, XHi: 300, YLo: 0, YHi: 100}); got != 7 {
		t.Fatalf("cross-shard QuerySum = %d", got)
	}
}

func TestPointStoreRebalance(t *testing.T) {
	s := NewPointStore(pam.Options{}, []float64{1000, 2000})
	t.Cleanup(s.Close)
	const n = 60
	for i := 0; i < n; i++ {
		s.Insert(rangetree.Point{X: float64(i), Y: float64(i % 7)}, 1)
	}
	v, _ := s.Snapshot()
	if got := v.Shard(0).Size(); got != n {
		t.Fatalf("pre-rebalance shard 0 holds %d", got)
	}
	if ok, err := s.Rebalance(); err != nil || !ok {
		t.Fatal("point store refused to rebalance")
	}
	v, _ = s.Snapshot()
	if got := v.Size(); got != n {
		t.Fatalf("rebalance changed Size to %d", got)
	}
	lo, hi := int64(1<<62), int64(0)
	for i := 0; i < v.NumShards(); i++ {
		sz := v.Shard(i).Size()
		lo, hi = min(lo, sz), max(hi, sz)
	}
	if hi-lo > 1 {
		t.Fatalf("shard sizes spread %d..%d after rebalance", lo, hi)
	}
	if got := v.QueryCount(everything); got != n {
		t.Fatalf("QueryCount after rebalance = %d", got)
	}
	// Post-rebalance writes route correctly.
	s.Insert(rangetree.Point{X: 5, Y: 100}, 3)
	v, _ = s.Snapshot()
	if w, ok := v.Weight(rangetree.Point{X: 5, Y: 100}); !ok || w != 3 {
		t.Fatalf("post-rebalance insert: %d, %v", w, ok)
	}
}

// TestCoalescedWritesAck checks that many single-op writes racing into
// one shard all get acknowledged and applied (the mailbox coalescing
// path) — every op lands, versions count sub-batches.
func TestCoalescedWritesAck(t *testing.T) {
	s := newHash(t, 1)
	var wg sync.WaitGroup
	const n = 500
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Put(uint64(i), int64(i))
		}(i)
	}
	wg.Wait()
	v, _ := s.Snapshot()
	if got := v.Size(); got != n {
		t.Fatalf("Size = %d", got)
	}
	if got := v.Versions()[0]; got != n {
		t.Fatalf("shard version = %d, want %d sub-batches", got, n)
	}
}

// TestPointStoreRebalanceDuplicateX pins the rebalance behavior when
// one x coordinate dominates: splits must stay strictly increasing (no
// unroutable shards), contents must survive, and routing must keep
// working for new writes.
func TestPointStoreRebalanceDuplicateX(t *testing.T) {
	s := NewPointStore(pam.Options{}, []float64{10, 20, 30})
	t.Cleanup(s.Close)
	const n = 40
	for i := 0; i < n; i++ {
		s.Insert(rangetree.Point{X: 5, Y: float64(i)}, 1) // all on one x
	}
	s.Insert(rangetree.Point{X: 25, Y: 1}, 1)
	if ok, err := s.Rebalance(); err != nil || !ok {
		t.Fatal("refused to rebalance")
	}
	v, _ := s.Snapshot()
	if got := v.Size(); got != n+1 {
		t.Fatalf("Size after rebalance = %d, want %d", got, n+1)
	}
	if got := v.QueryCount(everything); got != n+1 {
		t.Fatalf("QueryCount after rebalance = %d", got)
	}
	// Points sharing an x are unsplittable, so one shard holds all of
	// x=5; the rest must still be routable: writes at any x land.
	for _, x := range []float64{0, 5, 15, 25, 99} {
		p := rangetree.Point{X: x, Y: 777}
		s.Insert(p, 2)
		vp, _ := s.Snapshot()
		if w, ok := vp.Weight(p); !ok || w != 2 {
			t.Fatalf("post-rebalance insert at x=%v: %d, %v", x, w, ok)
		}
	}
}
