package serve

// -race stress: concurrent writers, readers of shared views,
// snapshotters, and a shard-rebalance in flight, on both store kinds.
// These tests assert only run-time invariants (no oracle): sizes,
// monotone versions, sorted iteration, and — for the spatial store —
// the ladder/structure invariants of every frozen shard via Validate.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dynamic"
	"repro/pam"
	"repro/rangetree"
)

func TestServeStressMap(t *testing.T) {
	const (
		writers  = 4
		readers  = 3
		perW     = 300
		keySpace = 512
	)
	s := NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, []uint64{128, 256, 384})
	defer s.Close()

	var latest atomic.Pointer[sumView]
	v0, _ := s.Snapshot()
	latest.Store(&v0)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := uint64((w*perW + i*7) % keySpace)
				switch i % 3 {
				case 0, 1:
					s.Apply([]kvop{
						{Kind: OpPut, Key: k, Val: int64(i)},
						{Kind: OpPut, Key: (k + 97) % keySpace, Val: int64(-i)},
					})
				case 2:
					s.Delete(k)
				}
			}
		}(w)
	}

	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // snapshotter: publishes views, checks monotonicity
		defer aux.Done()
		var prev sumView
		have := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, _ := s.Snapshot()
			if have && v.Seq() < prev.Seq() {
				t.Errorf("Seq went backwards: %d then %d", prev.Seq(), v.Seq())
			}
			prev, have = v, true
			latest.Store(&v)
			runtime.Gosched()
		}
	}()
	aux.Add(1)
	go func() { // rebalancer in flight
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Rebalance()
			runtime.Gosched()
		}
	}()
	for r := 0; r < readers; r++ {
		aux.Add(1)
		go func() { // readers hammer shared views while writers mutate
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := *latest.Load()
				var n, sum int64
				var prev uint64
				first := true
				v.ForEach(func(k uint64, val int64) bool {
					if !first && k <= prev {
						t.Errorf("iteration not strictly increasing")
						return false
					}
					prev, first = k, false
					n++
					sum += val
					return true
				})
				if n != v.Size() {
					t.Errorf("iterated %d entries, Size says %d", n, v.Size())
				}
				if sum != v.AugVal() {
					t.Errorf("iterated sum %d, AugVal says %d", sum, v.AugVal())
				}
				v.Find(uint64(n) % keySpace)
				v.AugRange(keySpace/4, keySpace/2)
				runtime.Gosched()
			}
		}()
	}

	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}
	final, _ := s.Snapshot()
	if final.Seq() != writers*perW {
		t.Fatalf("final Seq = %d, want %d", final.Seq(), writers*perW)
	}
}

// TestServeStressPoints runs the ladder-backed spatial store with a
// tiny write-buffer capacity, so snapshot acquisition and rebalances
// interleave with carry cascades inside the shard goroutines; every
// recorded view's shard trees must pass the full ladder Validate.
func TestServeStressPoints(t *testing.T) {
	old := dynamic.SetFlushCap(3)
	defer dynamic.SetFlushCap(old)

	s := NewPointStore(pam.Options{}, []float64{5, 11})
	defer s.Close()

	const writers, perW = 3, 150
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				p := rangetree.Point{X: float64((w*3 + i) % 16), Y: float64(i % 16)}
				if i%4 == 3 {
					s.Delete(p)
				} else {
					s.Insert(p, int64(1+i%5))
				}
			}
		}(w)
	}
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Rebalance()
			runtime.Gosched()
		}
	}()
	aux.Add(1)
	go func() { // snapshotting reader: queries + per-shard Validate
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, _ := s.Snapshot()
			if got := v.QueryCount(everything); got != v.Size() {
				t.Errorf("QueryCount(everything) = %d, Size = %d", got, v.Size())
			}
			v.QuerySum(rangetree.Rect{XLo: 2, XHi: 9, YLo: 2, YHi: 9})
			for i := 0; i < v.NumShards(); i++ {
				if err := v.Shard(i).Validate(); err != nil {
					t.Errorf("shard %d Validate: %v", i, err)
				}
			}
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}
	final, _ := s.Snapshot()
	for i := 0; i < final.NumShards(); i++ {
		if err := final.Shard(i).Validate(); err != nil {
			t.Fatalf("final shard %d Validate: %v", i, err)
		}
	}
}
