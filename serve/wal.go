package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// Write-ahead log at sequencer granularity. Every acknowledged batch is
// one WAL record carrying its global sequence number; records are
// appended under the sequencer lock (so WAL order is exactly sequence
// order, making durability prefix-closed) into an in-memory pending
// buffer, and made durable by group commit: the first Sync caller
// flushes and fsyncs everything pending — including records appended by
// batches that arrived after it — and later callers ride the same
// fsync. A batch is acknowledged only after its record is durable.
//
// Record framing:
//
//	u32le payloadLen | u32le crc32(payload) | payload
//	payload: uvarint seq | uvarint nOps | ops (codec-encoded)
//
// The log is split into generation files (wal-%06d): a checkpoint
// rotates to the next generation at its exact snapshot point, so
// generation g holds precisely the batches sequenced after checkpoint g
// and before checkpoint g+1. Generations are flushed strictly in order
// — generation g is fully written, fsynced, and closed before any byte
// of g+1 reaches the filesystem — so a record's durability implies the
// durability of every earlier record across files, and recovery's
// stop-at-first-torn-record rule can never drop an acknowledged batch.

// opCodec encodes and decodes one op type for WAL records.
type opCodec[O any] struct {
	append func(buf []byte, op O) []byte
	at     func(data []byte) (O, int, error)
}

func walName(gen int) string { return fmt.Sprintf("wal-%06d", gen) }

// walChunk is a run of encoded records belonging to one generation.
type walChunk struct {
	gen  int
	data []byte
}

type wal[O any] struct {
	fs  FS
	enc opCodec[O]

	// mu is the inner lock guarding the pending buffer; appendLocked
	// takes it under the engine's sequencer lock (e.mu > w.mu).
	mu      sync.Mutex
	pending []walChunk
	gen     int    // generation new records append to
	next    uint64 // seq after the last appended record
	err     error  // sticky: set on the first filesystem failure

	// durable is 1 + the highest sequence number known durable (i.e.
	// the length of the durable batch prefix).
	durable atomic.Uint64

	// flushMu serializes flushers; all filesystem I/O happens under it.
	flushMu sync.Mutex
	f       File // open file of generation fGen, nil before first flush
	fGen    int
}

// newWAL returns a log appending to the given generation, with every
// sequence number below startSeq already durable (the recovered state).
func newWAL[O any](fs FS, enc opCodec[O], gen int, startSeq uint64) *wal[O] {
	w := &wal[O]{fs: fs, enc: enc, gen: gen, next: startSeq}
	w.durable.Store(startSeq)
	return w
}

// appendLocked encodes one batch record into the pending buffer. It is
// the engine's logAppend hook, called under the sequencer lock in
// sequence order.
func (w *wal[O]) appendLocked(seq uint64, ops []O) {
	payload := binary.AppendUvarint(nil, seq)
	payload = binary.AppendUvarint(payload, uint64(len(ops)))
	for _, op := range ops {
		payload = w.enc.append(payload, op)
	}
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.pending); n > 0 && w.pending[n-1].gen == w.gen {
		w.pending[n-1].data = append(w.pending[n-1].data, rec...)
	} else {
		w.pending = append(w.pending, walChunk{gen: w.gen, data: rec})
	}
	w.next = seq + 1
}

// rotateLocked moves subsequent records to the next generation file.
// Called under the sequencer lock at a snapshot point, it splits the
// log exactly at the checkpoint's sequence number. It returns the new
// generation (the index of the checkpoint being taken).
func (w *wal[O]) rotateLocked() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gen++
	return w.gen
}

// Sync blocks until the record for seq is durable (group commit) and
// returns the sticky error if the log has failed: a nil return is the
// durability acknowledgment.
func (w *wal[O]) Sync(seq uint64) error {
	for {
		if w.durable.Load() > seq {
			return nil
		}
		if err := w.flushOnce(); err != nil {
			return err
		}
	}
}

// flushOnce steals the whole pending buffer and writes it out, fsyncing
// (and switching) generation files in order. One call makes durable
// every record appended before it started.
func (w *wal[O]) flushOnce() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	chunks := w.pending
	target := w.next
	err := w.err
	w.pending = nil
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if len(chunks) == 0 {
		return nil
	}
	for _, c := range chunks {
		if w.f == nil || w.fGen != c.gen {
			if w.f != nil {
				if err := w.f.Sync(); err != nil {
					return w.fail(err)
				}
				if err := w.f.Close(); err != nil {
					return w.fail(err)
				}
				w.f = nil
			}
			f, err := w.fs.Append(walName(c.gen))
			if err != nil {
				return w.fail(err)
			}
			w.f, w.fGen = f, c.gen
		}
		if _, err := w.f.Write(c.data); err != nil {
			return w.fail(err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.durable.Store(target)
	return nil
}

// sealedBelow returns the bound g such that every generation file below
// g is sealed: fully written, fsynced, and closed, never to be appended
// again. Only sealed generations are safe for the scrubber to verify —
// the open generation legitimately ends in unflushed or unsynced bytes.
func (w *wal[O]) sealedBelow() int {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	if w.f != nil {
		return w.fGen
	}
	// No file open yet: nothing in the current generation has been
	// flushed, but pending chunks may still target older generations.
	w.mu.Lock()
	defer w.mu.Unlock()
	g := w.gen
	for _, c := range w.pending {
		if c.gen < g {
			g = c.gen
		}
	}
	return g
}

// fail records the first filesystem error; every later Sync returns it
// and no batch is acknowledged again.
func (w *wal[O]) fail(err error) error {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	err = w.err
	w.mu.Unlock()
	return err
}

// Close flushes whatever is pending and closes the current file.
func (w *wal[O]) Close() error {
	w.mu.Lock()
	last := w.next
	w.mu.Unlock()
	if last > 0 {
		if err := w.Sync(last - 1); err != nil {
			return err
		}
	} else if err := w.flushOnce(); err != nil {
		return err
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	if w.f != nil {
		err := w.f.Close()
		w.f = nil
		return err
	}
	return nil
}

// walBatch is one decoded WAL record.
type walBatch[O any] struct {
	seq uint64
	ops []O
}

// decodeWALFile parses complete, checksummed records from the front of
// one generation file and returns them with the length of the valid
// prefix. Parsing stops at the first torn or corrupt record — the
// crash-truncated tail; the generation-ordered flush discipline
// guarantees nothing acknowledged follows it. Arbitrary bytes produce
// at worst fewer batches, never a panic or a corrupt batch (the CRC
// guards every accepted record).
func decodeWALFile[O any](enc opCodec[O], data []byte) ([]walBatch[O], int) {
	var out []walBatch[O]
	valid := 0
	for {
		rest := data[valid:]
		if len(rest) < 8 {
			return out, valid
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen < 0 || len(rest)-8 < plen {
			return out, valid
		}
		payload := rest[8 : 8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return out, valid
		}
		b, err := decodeWALPayload(enc, payload)
		if err != nil {
			return out, valid
		}
		out = append(out, b)
		valid += 8 + plen
	}
}

func decodeWALPayload[O any](enc opCodec[O], payload []byte) (walBatch[O], error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return walBatch[O]{}, ErrCorruptFile
	}
	payload = payload[n:]
	nOps, n := binary.Uvarint(payload)
	if n <= 0 {
		return walBatch[O]{}, ErrCorruptFile
	}
	payload = payload[n:]
	// An op encodes to at least one byte; a count beyond the remaining
	// bytes is corruption, not an allocation request.
	if nOps > uint64(len(payload)) {
		return walBatch[O]{}, ErrCorruptFile
	}
	ops := make([]O, 0, nOps)
	for i := uint64(0); i < nOps; i++ {
		op, n, err := enc.at(payload)
		if err != nil {
			return walBatch[O]{}, err
		}
		payload = payload[n:]
		ops = append(ops, op)
	}
	if len(payload) != 0 {
		return walBatch[O]{}, ErrCorruptFile
	}
	return walBatch[O]{seq: seq, ops: ops}, nil
}
