package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pam"
	"repro/rangetree"
)

// newTunedRange is newRange with an explicit pipeline tuning.
func newTunedRange(t testing.TB, tun Tuning, splits ...uint64) *sumStore {
	s := NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, splits, tun)
	t.Cleanup(s.Close)
	return s
}

// TestBackpressureBlockProgress drives many async writers through a
// deliberately starved pipeline (single shard, one-slot mailbox, a
// four-op admission budget, and a slow flush timer standing in for a
// slow consumer) in the default block mode. The test passes iff every
// write completes — a lost wakeup or a budget leak shows up as a hang,
// which the suite timeout converts into a failure with stacks.
func TestBackpressureBlockProgress(t *testing.T) {
	s := newTunedRange(t, Tuning{
		MailboxDepth:  1,
		ShardOpBudget: 4,
		FlushWait:     200 * time.Microsecond,
		FlushOps:      8,
	}) // no splits: one shard, every op contends
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	futs := make([][]*Future, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*perWriter + i)
				f, err := s.PutAsync(k, int64(k))
				if err != nil {
					t.Errorf("writer %d: PutAsync: %v", w, err)
					return
				}
				futs[w] = append(futs[w], f)
			}
		}(w)
	}
	wg.Wait()
	for w := range futs {
		for _, f := range futs[w] {
			if a := f.Wait(); a.Err != nil {
				t.Fatalf("future seq %d resolved with error: %v", f.Seq(), a.Err)
			}
		}
	}
	v, _ := s.Snapshot()
	if got, want := v.Size(), int64(writers*perWriter); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
}

// TestBackpressureFastFail fills a single shard's admission budget with
// held async writes and checks that the next write is rejected with
// ErrOverloaded immediately — and that the rejection costs nothing: the
// previously accepted writes still resolve and survive into snapshots,
// and the pipeline accepts new writes once the budget drains.
func TestBackpressureFastFail(t *testing.T) {
	s := newTunedRange(t, Tuning{
		MailboxDepth:  4,
		ShardOpBudget: 2,
		Backpressure:  BackpressureFastFail,
		FlushWait:     10 * time.Second, // hold writes until something forces a flush
		FlushOps:      1 << 20,
	})
	f1, err := s.PutAsync(1, 10)
	if err != nil {
		t.Fatalf("PutAsync(1): %v", err)
	}
	f2, err := s.PutAsync(2, 20)
	if err != nil {
		t.Fatalf("PutAsync(2): %v", err)
	}
	if _, err := s.PutAsync(3, 30); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget PutAsync = %v, want ErrOverloaded", err)
	}
	if _, err := s.Put(4, 40); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget sync Put = %v, want ErrOverloaded", err)
	}
	// A snapshot marker forces the held sub-batches to flush first, so
	// the accepted writes must all be visible and their futures resolve.
	v, _ := s.Snapshot()
	for _, want := range []struct {
		k uint64
		v int64
	}{{1, 10}, {2, 20}} {
		if got, ok := v.Find(want.k); !ok || got != want.v {
			t.Fatalf("Find(%d) = %d, %v after overload; accepted write lost", want.k, got, ok)
		}
	}
	if v.Contains(3) || v.Contains(4) {
		t.Fatal("rejected write leaked into the store")
	}
	for _, f := range []*Future{f1, f2} {
		if a := f.Wait(); a.Err != nil {
			t.Fatalf("accepted future seq %d resolved with error: %v", f.Seq(), a.Err)
		}
	}
	// Budget drained by the flush: the pipeline accepts writes again.
	if _, err := s.PutAsync(5, 50); err != nil {
		t.Fatalf("PutAsync after drain: %v", err)
	}
}

// TestCloseGoroutineBaseline checks that Close tears down every
// pipeline goroutine — shard loops, the resolver, and the auto-rebalance
// policy ticker — by comparing the process goroutine count before and
// after a burst of store lifecycles.
func TestCloseGoroutineBaseline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		h, err := NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, 4, mixHash)
		if err != nil {
			t.Fatalf("NewHashStore: %v", err)
		}
		r := NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, []uint64{100, 200},
			Tuning{AutoRebalance: &AutoRebalance{CheckEvery: time.Millisecond}})
		p := NewPointStore(pam.Options{}, []float64{0})
		d, err := openDurSum(NewMemFS(), 2, 4)
		if err != nil {
			t.Fatalf("openDurSum: %v", err)
		}
		var futs []*Future
		for k := uint64(0); k < 32; k++ {
			if f, err := h.PutAsync(k, 1); err == nil {
				futs = append(futs, f)
			}
			if f, err := r.PutAsync(k, 1); err == nil {
				futs = append(futs, f)
			}
			if f, err := d.PutAsync(k, 1); err == nil {
				futs = append(futs, f)
			}
			if f, err := p.InsertAsync(rangetree.Point{X: float64(k), Y: 1}, 1); err == nil {
				futs = append(futs, f)
			}
		}
		h.Close()
		r.Close()
		p.Close()
		d.Close()
		for _, f := range futs {
			if _, ok := f.TryAck(); !ok {
				t.Fatal("future enqueued before Close left unresolved")
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge any parked goroutines through exit
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestErrClosedSticky closes each store flavor and checks every write
// entry point returns the sticky ErrClosed instead of panicking, sync
// and async alike.
func TestErrClosedSticky(t *testing.T) {
	kv, err := NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, 2, mixHash)
	if err != nil {
		t.Fatalf("NewHashStore: %v", err)
	}
	kv.Close()
	kv.Close() // idempotent
	pt := NewPointStore(pam.Options{}, []float64{0})
	pt.Close()
	d, err := openDurSum(NewMemFS(), 2, 0)
	if err != nil {
		t.Fatalf("openDurSum: %v", err)
	}
	d.Close()
	p := rangetree.Point{X: 1, Y: 2}
	for _, tc := range []struct {
		name string
		call func() error
	}{
		{"store/Apply", func() error { _, err := kv.Apply([]kvop{{Kind: OpPut, Key: 1, Val: 1}}); return err }},
		{"store/ApplyAsync", func() error { _, err := kv.ApplyAsync(nil); return err }},
		{"store/Put", func() error { _, err := kv.Put(1, 1); return err }},
		{"store/PutAsync", func() error { _, err := kv.PutAsync(1, 1); return err }},
		{"store/Delete", func() error { _, err := kv.Delete(1); return err }},
		{"store/DeleteAsync", func() error { _, err := kv.DeleteAsync(1); return err }},
		{"points/Apply", func() error { _, err := pt.Apply([]PointOp{InsertPoint(p, 1)}); return err }},
		{"points/ApplyAsync", func() error { _, err := pt.ApplyAsync(nil); return err }},
		{"points/Insert", func() error { _, err := pt.Insert(p, 1); return err }},
		{"points/InsertAsync", func() error { _, err := pt.InsertAsync(p, 1); return err }},
		{"points/Delete", func() error { _, err := pt.Delete(p); return err }},
		{"points/DeleteAsync", func() error { _, err := pt.DeleteAsync(p); return err }},
		{"durable/Apply", func() error { _, err := d.Apply([]kvop{{Kind: OpPut, Key: 1, Val: 1}}); return err }},
		{"durable/ApplyAsync", func() error { _, err := d.ApplyAsync(nil); return err }},
		{"durable/Put", func() error { _, err := d.Put(1, 1); return err }},
		{"durable/PutAsync", func() error { _, err := d.PutAsync(1, 1); return err }},
		{"durable/Delete", func() error { _, err := d.Delete(1); return err }},
		{"durable/DeleteAsync", func() error { _, err := d.DeleteAsync(1); return err }},
		{"store/Snapshot", func() error { _, err := kv.Snapshot(); return err }},
		{"store/Rebalance", func() error {
			s := NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, []uint64{10})
			s.Close()
			_, err := s.Rebalance()
			return err
		}},
		{"points/Snapshot", func() error { _, err := pt.Snapshot(); return err }},
		{"points/Rebalance", func() error { _, err := pt.Rebalance(); return err }},
		{"durable/Snapshot", func() error { _, err := d.Snapshot(); return err }},
		{"durable/Checkpoint", func() error { _, err := d.Checkpoint(); return err }},
		{"durable/Compact", func() error { _, err := d.Compact(); return err }},
		{"store/ReaderView", func() error { _, err := kv.ReaderView(); return err }},
		{"points/ReaderView", func() error { _, err := pt.ReaderView(); return err }},
		{"durable/ReaderView", func() error { _, err := d.ReaderView(); return err }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); !errors.Is(err, ErrClosed) {
				t.Fatalf("%s on closed store = %v, want ErrClosed", tc.name, err)
			}
		})
	}
}

// TestCloseDuringInflight closes a store while writers are mid-batch:
// every write must either succeed (future resolves cleanly) or return
// ErrClosed — never panic, never hang, never resolve a future that was
// accepted before Close with an error.
func TestCloseDuringInflight(t *testing.T) {
	for _, mode := range []Backpressure{BackpressureBlock, BackpressureFastFail} {
		name := map[Backpressure]string{BackpressureBlock: "block", BackpressureFastFail: "fastfail"}[mode]
		t.Run(name, func(t *testing.T) {
			s := NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
				pam.Options{}, []uint64{1 << 32},
				Tuning{MailboxDepth: 2, ShardOpBudget: 16, Backpressure: mode, FlushWait: 100 * time.Microsecond})
			var accepted atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						k := uint64(w)<<40 | uint64(i)
						var f *Future
						var err error
						if i%2 == 0 {
							f, err = s.PutAsync(k, int64(i))
						} else {
							_, err = s.Put(k, int64(i))
						}
						switch {
						case errors.Is(err, ErrClosed):
							return
						case errors.Is(err, ErrOverloaded):
							runtime.Gosched()
						case err != nil:
							t.Errorf("unexpected error: %v", err)
							return
						default:
							accepted.Add(1)
							if f != nil {
								if a := f.Wait(); a.Err != nil {
									t.Errorf("accepted future seq %d got %v", f.Seq(), a.Err)
									return
								}
							}
						}
					}
				}(w)
			}
			time.Sleep(2 * time.Millisecond)
			s.Close()
			wg.Wait()
			if accepted.Load() == 0 {
				t.Error("Close won every race; no write was ever accepted")
			}
			if _, err := s.Put(0, 0); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after Close = %v, want sticky ErrClosed", err)
			}
		})
	}
}

// TestAutoRebalanceTrigger loads every key into shard 0 of a wildly
// mis-split range store and waits for the background policy to notice
// the sustained size skew and re-split: the whole point of the policy
// is that no one calls Rebalance by hand.
func TestAutoRebalanceTrigger(t *testing.T) {
	s := newTunedRange(t, Tuning{
		AutoRebalance: &AutoRebalance{
			CheckEvery: time.Millisecond,
			SizeSkew:   1.5,
			Sustain:    2,
			MinSize:    16,
		},
	}, 1000, 2000, 3000)
	for k := uint64(0); k < 100; k++ { // all below the first split: shard 0 owns everything
		if _, err := s.Put(k, int64(k)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _ := s.Snapshot()
		maxSz, total := int64(0), int64(0)
		for i := 0; i < v.NumShards(); i++ {
			sz := v.Shard(i).Size()
			total += sz
			if sz > maxSz {
				maxSz = sz
			}
		}
		if total != 100 {
			t.Fatalf("Size = %d, want 100", total)
		}
		// Rebalance splits 100 keys across 4 shards: max shard ends
		// within one of 25, far under the 1.5x-mean trigger.
		if maxSz*int64(v.NumShards()) <= int64(1.5*float64(total)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-rebalance never fired: max shard %d of %d total", maxSz, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPointAutoRebalanceTrigger is the PointStore twin: the policy must
// watch point-count skew through the same machinery.
func TestPointAutoRebalanceTrigger(t *testing.T) {
	s := NewPointStore(pam.Options{}, []float64{1000, 2000}, Tuning{
		AutoRebalance: &AutoRebalance{
			CheckEvery: time.Millisecond,
			SizeSkew:   1.5,
			Sustain:    2,
			MinSize:    16,
		},
	})
	t.Cleanup(s.Close)
	for i := 0; i < 90; i++ {
		if _, err := s.Insert(rangetree.Point{X: float64(i), Y: float64(i % 7)}, 1); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _ := s.Snapshot()
		maxSz, total := int64(0), int64(0)
		for i := 0; i < v.NumShards(); i++ {
			sz := v.Shard(i).Size()
			total += sz
			if sz > maxSz {
				maxSz = sz
			}
		}
		if total != 90 {
			t.Fatalf("Size = %d, want 90", total)
		}
		if maxSz*int64(v.NumShards()) <= int64(1.5*float64(total)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-rebalance never fired: max shard %d of %d total", maxSz, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStatsCounters sanity-checks the ShardStats sampling: applied
// counts add up after quiescence, queue charges return to zero, and the
// flush-latency EWMA is populated once a shard has flushed.
func TestStatsCounters(t *testing.T) {
	s := newTunedRange(t, Tuning{FlushWait: 50 * time.Microsecond}, 50)
	var futs []*Future
	for k := uint64(0); k < 100; k++ {
		f, err := s.PutAsync(k, int64(k))
		if err != nil {
			t.Fatalf("PutAsync: %v", err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if a := f.Wait(); a.Err != nil {
			t.Fatalf("future: %v", a.Err)
		}
		if a := f.Wait(); a.Enqueued.After(a.Flushed) || a.Flushed.After(a.Committed) {
			t.Fatalf("timestamps out of order: enq %v flush %v commit %v",
				a.Enqueued, a.Flushed, a.Committed)
		}
		if f.Wait().QueueLatency() < 0 || f.Wait().CommitLatency() < 0 {
			t.Fatal("negative latency")
		}
	}
	var applied uint64
	for i, st := range s.Stats() {
		if st.QueuedBatches != 0 || st.QueuedOps != 0 {
			t.Fatalf("shard %d still charged after quiescence: %+v", i, st)
		}
		applied += st.AppliedOps
		if st.AppliedOps > 0 && st.FlushLatency <= 0 {
			t.Fatalf("shard %d flushed %d ops but FlushLatency = %v", i, st.AppliedOps, st.FlushLatency)
		}
	}
	if applied != 100 {
		t.Fatalf("AppliedOps sum = %d, want 100", applied)
	}
}
