package serve

// Read replicas and the PR-9 bugfix regressions: the float-padding
// Rebalance fix (pad++ is a no-op at 2^53 and ±Inf), constructor and
// rebalance error returns replacing panics, NaN rejection, and the
// replica staleness contract — each shard's slice of a ReaderView
// equals that shard's state after some prefix of its applied
// sub-batches, with versions and epochs monotone.

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/pam"
	"repro/rangetree"
)

func TestNewHashStoreZeroShards(t *testing.T) {
	for _, shards := range []int{0, -3} {
		s, err := NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}, shards, mixHash)
		if !errors.Is(err, ErrNoShards) {
			t.Fatalf("NewHashStore(shards=%d) err = %v, want ErrNoShards", shards, err)
		}
		if s != nil {
			t.Fatal("NewHashStore returned a store alongside the error")
		}
	}
}

// TestRebalanceShardCountError feeds the engine a redistribute function
// that changes the shard count: the rebalance must fail with
// ErrRebalanceShards instead of panicking, reinstall the old states,
// and leave the store fully serving.
func TestRebalanceShardCountError(t *testing.T) {
	s := newHash(t, 3)
	for k := uint64(0); k < 64; k++ {
		if _, err := s.Put(k, int64(k)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	type m = pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]]
	err := s.eng.rebalance(func(states []m) ([]m, func(kvop) int) {
		return states[:len(states)-1], nil // drops a shard
	})
	if !errors.Is(err, ErrRebalanceShards) {
		t.Fatalf("count-changing rebalance err = %v, want ErrRebalanceShards", err)
	}
	// The store must still serve: writes, snapshots, replica views.
	if _, err := s.Put(1000, 1); err != nil {
		t.Fatalf("Put after failed rebalance: %v", err)
	}
	v, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after failed rebalance: %v", err)
	}
	if v.Size() != 65 {
		t.Fatalf("Size after failed rebalance = %d, want 65", v.Size())
	}
	if _, err := s.ReaderView(); err != nil {
		t.Fatalf("ReaderView after failed rebalance: %v", err)
	}
}

// TestRebalanceFloatPadding is the regression for the pad++ padding
// loop: incrementing a float64 by 1 is a no-op at x >= 2^53 (1 is below
// the ulp) and at +Inf, so a point set whose maximum x sits there used
// to loop forever when fewer distinct xs than shards exist. The
// Nextafter-based padding must terminate, keep the splits strictly
// increasing, preserve the shard count, and route every point home.
func TestRebalanceFloatPadding(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
	}{
		{"2^53", []float64{1 << 53}},
		{"+Inf", []float64{math.Inf(1)}},
		{"2^53 pair", []float64{1 << 53, 3}},
		{"MaxFloat64", []float64{math.MaxFloat64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewPointStore(pam.Options{}, []float64{1, 2}) // 3 shards
			defer s.Close()
			var want int64
			for i, x := range tc.xs {
				if _, err := s.Insert(rangetree.Point{X: x, Y: float64(i)}, 1); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				want++
			}
			done := make(chan error, 1)
			go func() {
				_, err := s.Rebalance()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("Rebalance: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Rebalance hung (padding loop did not terminate)")
			}
			splits := s.Splits()
			if len(splits) != 2 {
				t.Fatalf("splits after rebalance = %v, want 2 entries", splits)
			}
			for i := 1; i < len(splits); i++ {
				if !(splits[i-1] < splits[i]) {
					t.Fatalf("splits not strictly increasing: %v", splits)
				}
			}
			v, err := s.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if v.NumShards() != 3 {
				t.Fatalf("shard count changed to %d", v.NumShards())
			}
			if got := v.QueryCount(everything); got != want {
				t.Fatalf("QueryCount = %d, want %d", got, want)
			}
			for i, x := range tc.xs {
				p := rangetree.Point{X: x, Y: float64(i)}
				if w, ok := v.Weight(p); !ok || w != 1 {
					t.Fatalf("Weight(%v) = %d,%v after rebalance", p, w, ok)
				}
			}
			// The store keeps accepting writes routed by the new splits.
			if _, err := s.Insert(rangetree.Point{X: 0.5, Y: 9}, 2); err != nil {
				t.Fatalf("Insert after rebalance: %v", err)
			}
		})
	}
}

func TestNaNPointRejected(t *testing.T) {
	s := NewPointStore(pam.Options{}, []float64{0})
	defer s.Close()
	for _, p := range []rangetree.Point{
		{X: math.NaN(), Y: 1},
		{X: 1, Y: math.NaN()},
	} {
		if _, err := s.Insert(p, 1); !errors.Is(err, ErrNaNPoint) {
			t.Fatalf("Insert(%v) err = %v, want ErrNaNPoint", p, err)
		}
		if _, err := s.InsertAsync(p, 1); !errors.Is(err, ErrNaNPoint) {
			t.Fatalf("InsertAsync(%v) err = %v, want ErrNaNPoint", p, err)
		}
		if _, err := s.Delete(p); !errors.Is(err, ErrNaNPoint) {
			t.Fatalf("Delete(%v) err = %v, want ErrNaNPoint", p, err)
		}
	}
	// Rejections consume no sequence number and leave the store clean.
	seqn, err := s.Insert(rangetree.Point{X: 1, Y: 1}, 1)
	if err != nil {
		t.Fatalf("clean Insert: %v", err)
	}
	if seqn != 0 {
		t.Fatalf("NaN rejections burned sequence numbers: first clean write at seq %d", seqn)
	}
}

// TestReplicaPrefixConsistency is the replica-side differential check:
// concurrent writers stream batches into a hash store while readers
// record ReaderViews; afterwards each recorded view's shards are
// verified against the oracle — shard i at version v must equal the
// replay of exactly the first v sub-batches routed to shard i in global
// sequence order (hash stores never rebalance, so versions count
// applied sub-batches only).
func TestReplicaPrefixConsistency(t *testing.T) {
	const (
		shards   = 4
		writers  = 4
		perW     = 150
		keySpace = 256
	)
	s := newHash(t, shards)

	type acked struct {
		seq uint64
		ops []kvop
	}
	var mu sync.Mutex
	var all []acked

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := uint64((w*perW + i*13) % keySpace)
				ops := []kvop{{Kind: OpPut, Key: k, Val: int64(w<<20 | i)}}
				if i%5 == 4 {
					ops = append(ops, kvop{Kind: OpDelete, Key: (k + 31) % keySpace})
				}
				seqn, err := s.Apply(ops)
				if err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
				mu.Lock()
				all = append(all, acked{seq: seqn, ops: ops})
				mu.Unlock()
			}
		}(w)
	}

	// Concurrent readers record replica views (bounded) and check
	// monotonicity online.
	const maxViews = 64
	var views []sumView
	stop := make(chan struct{})
	var aux sync.WaitGroup
	for r := 0; r < 3; r++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			var prevE, prevV []uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := s.ReaderView()
				if err != nil {
					t.Errorf("ReaderView: %v", err)
					return
				}
				e, ver := v.Epochs(), v.Versions()
				if prevE != nil {
					for i := range e {
						if e[i] < prevE[i] || ver[i] < prevV[i] {
							t.Errorf("replica shard %d went backwards: epoch %d->%d version %d->%d",
								i, prevE[i], e[i], prevV[i], ver[i])
						}
					}
				}
				prevE, prevV = e, ver
				mu.Lock()
				if len(views) < maxViews {
					views = append(views, v)
				}
				mu.Unlock()
				runtime.Gosched()
			}
		}()
	}

	wg.Wait()
	// One more view after all writes: it may still trail (publication is
	// asynchronous), so it joins the prefix check rather than a final
	// equality check.
	vlast, err := s.ReaderView()
	if err != nil {
		t.Fatalf("ReaderView: %v", err)
	}
	close(stop)
	aux.Wait()
	views = append(views, vlast)
	if t.Failed() {
		t.FailNow()
	}

	// Oracle: replay acked batches in sequence order, recording each
	// shard's state after every sub-batch (pam maps are persistent, so
	// snapshots are free).
	sortAcked := all
	if len(sortAcked) != writers*perW {
		t.Fatalf("recorded %d acked batches, want %d", len(sortAcked), writers*perW)
	}
	bySeq := make([][]kvop, len(sortAcked))
	for _, a := range sortAcked {
		if bySeq[a.seq] != nil {
			t.Fatalf("duplicate seq %d", a.seq)
		}
		bySeq[a.seq] = a.ops
	}
	type shardMap = pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]]
	states := make([][]shardMap, shards) // states[i][v] = shard i after v sub-batches
	cur := make([]shardMap, shards)
	for i := range cur {
		cur[i] = pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		states[i] = []shardMap{cur[i]}
	}
	route := func(k uint64) int { return int(mixHash(k) % uint64(shards)) }
	for _, ops := range bySeq {
		per := make([][]kvop, shards)
		for _, op := range ops {
			i := route(op.Key)
			per[i] = append(per[i], op)
		}
		for i, sub := range per {
			if len(sub) == 0 {
				continue
			}
			cur[i] = applyOps(cur[i], sub)
			states[i] = append(states[i], cur[i])
		}
	}

	for vi, v := range views {
		vers := v.Versions()
		for i := 0; i < shards; i++ {
			vv := vers[i]
			if vv >= uint64(len(states[i])) {
				t.Fatalf("view %d shard %d: version %d exceeds %d applied sub-batches",
					vi, i, vv, len(states[i])-1)
			}
			want := states[i][vv]
			got := v.Shard(i)
			if got.Size() != want.Size() {
				t.Fatalf("view %d shard %d @v%d: Size %d, oracle %d", vi, i, vv, got.Size(), want.Size())
			}
			we := want.Entries()
			for j, e := range got.Entries() {
				if we[j] != e {
					t.Fatalf("view %d shard %d @v%d: entry %d = %v, oracle %v", vi, i, vv, j, e, we[j])
				}
			}
		}
	}
}

// TestPointReplicaPrefix is the spatial counterpart with background
// carries on: single-writer per-shard streams make each shard's state a
// pure function of its version, so each recorded replica view must
// equal the oracle prefix exactly — even when the published trees carry
// overflow runs whose background carry hasn't landed.
func TestPointReplicaPrefix(t *testing.T) {
	old := dynamic.SetFlushCap(3)
	defer dynamic.SetFlushCap(old)

	const perShard = 160
	splits := []float64{10}
	s := NewPointStore(pam.Options{}, splits,
		Tuning{CarryWorkers: 2, MaxPendingCarries: 2})
	defer s.Close()

	// One writer per shard, each inserting only into its own x range:
	// shard i's version v means exactly the first v of that writer's
	// writes are in (sub-batch = batch here: one op per batch).
	var wg sync.WaitGroup
	for sh := 0; sh < 2; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				p := rangetree.Point{X: float64(sh*10 + i%8), Y: float64(i)}
				if _, err := s.Insert(p, int64(i+1)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(sh)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		var prevE []uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := s.ReaderView()
			if err != nil {
				t.Errorf("ReaderView: %v", err)
				return
			}
			if e := v.Epochs(); prevE != nil {
				for i := range e {
					if e[i] < prevE[i] {
						t.Errorf("replica epoch went backwards on shard %d", i)
					}
				}
				prevE = e
			} else {
				prevE = v.Epochs()
			}
			// Per-shard prefix: shard sh at version v holds exactly the
			// writer's first v inserts (weights accumulate per point).
			for sh := 0; sh < 2; sh++ {
				vv := v.Versions()[sh]
				oracle := map[rangetree.Point]int64{}
				for i := 0; i < int(vv); i++ {
					oracle[rangetree.Point{X: float64(sh*10 + i%8), Y: float64(i)}] += int64(i + 1)
				}
				tr := v.Shard(sh)
				if got, want := tr.Size(), int64(len(oracle)); got != want {
					t.Errorf("shard %d @v%d: Size %d, oracle %d", sh, vv, got, want)
					return
				}
				for p, w := range oracle {
					if got, ok := tr.Weight(p); !ok || got != w {
						t.Errorf("shard %d @v%d: Weight(%v) = %d,%v, oracle %d", sh, vv, p, got, ok, w)
						return
					}
				}
			}
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Background carries really ran (flushCap 3 over 160 writes/shard).
	v, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < v.NumShards(); i++ {
		if err := v.Shard(i).Validate(); err != nil {
			t.Fatalf("final shard %d Validate: %v", i, err)
		}
	}
}

// TestServeStressCarries is the carry-worker -race stress: writers
// stream into a carrier-backed point store with a tiny flush capacity
// while a rebalancer (which invalidates in-flight carries), replica
// readers, and validating snapshotters run concurrently.
func TestServeStressCarries(t *testing.T) {
	old := dynamic.SetFlushCap(3)
	defer dynamic.SetFlushCap(old)

	s := NewPointStore(pam.Options{}, []float64{5, 11},
		Tuning{CarryWorkers: 3, MaxPendingCarries: 2, ReplicaRefresh: 100 * time.Microsecond})
	defer s.Close()

	const writers, perW = 3, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				p := rangetree.Point{X: float64((w*3 + i) % 16), Y: float64(i % 16)}
				if i%4 == 3 {
					s.Delete(p)
				} else {
					s.Insert(p, int64(1+i%5))
				}
			}
		}(w)
	}
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // rebalancer: each pass invalidates in-flight carries
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Rebalance()
			runtime.Gosched()
		}
	}()
	aux.Add(1)
	go func() { // snapshotting reader: queries + per-shard Validate
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, _ := s.Snapshot()
			if got := v.QueryCount(everything); got != v.Size() {
				t.Errorf("QueryCount(everything) = %d, Size = %d", got, v.Size())
			}
			for i := 0; i < v.NumShards(); i++ {
				if err := v.Shard(i).Validate(); err != nil {
					t.Errorf("shard %d Validate: %v", i, err)
				}
			}
			runtime.Gosched()
		}
	}()
	for r := 0; r < 2; r++ {
		aux.Add(1)
		go func() { // replica readers racing publications and rebalances
			defer aux.Done()
			var prevE []uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := s.ReaderView()
				if err != nil {
					t.Errorf("ReaderView: %v", err)
					return
				}
				e := v.Epochs()
				if prevE != nil {
					for i := range e {
						if e[i] < prevE[i] {
							t.Errorf("replica epoch went backwards on shard %d", i)
						}
					}
				}
				prevE = e
				if got := v.QueryCount(everything); got != v.Size() {
					t.Errorf("replica QueryCount = %d, Size = %d", got, v.Size())
				}
				runtime.Gosched()
			}
		}()
	}

	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}
	final, _ := s.Snapshot()
	for i := 0; i < final.NumShards(); i++ {
		if err := final.Shard(i).Validate(); err != nil {
			t.Fatalf("final shard %d Validate: %v", i, err)
		}
	}
}

// TestDurablePointsCarryWorkers checks the durability interplay:
// checkpoints taken while background carries are pending must settle
// the captured ladders (Dehydrate CarryAlls), and a reopened store
// replays to the same contents.
func TestDurablePointsCarryWorkers(t *testing.T) {
	old := dynamic.SetFlushCap(3)
	defer dynamic.SetFlushCap(old)

	fs := NewMemFS()
	cfg := DurableConfig{FS: fs, Tuning: Tuning{CarryWorkers: 2, MaxPendingCarries: 2}}
	d, err := OpenDurablePointStore(pam.Options{}, []float64{8}, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	oracle := map[rangetree.Point]int64{}
	for i := 0; i < 300; i++ {
		p := rangetree.Point{X: float64(i % 16), Y: float64(i % 7)}
		if i%5 == 4 {
			if _, err := d.Delete(p); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(oracle, p)
		} else {
			if _, err := d.Insert(p, int64(1+i%3)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			oracle[p] += int64(1 + i%3)
		}
		if i%90 == 89 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := OpenDurablePointStore(pam.Options{}, []float64{8}, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	v, err := d2.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got, want := v.Size(), int64(len(oracle)); got != want {
		t.Fatalf("recovered Size = %d, oracle %d", got, want)
	}
	for p, w := range oracle {
		if got, ok := v.Weight(p); !ok || got != w {
			t.Fatalf("recovered Weight(%v) = %d,%v, oracle %d", p, got, ok, w)
		}
	}
	// The recovered store still runs background carries.
	if _, err := d2.Insert(rangetree.Point{X: 3, Y: 99}, 7); err != nil {
		t.Fatalf("Insert after reopen: %v", err)
	}
	if _, err := d2.ReaderView(); err != nil {
		t.Fatalf("ReaderView after reopen: %v", err)
	}
}
