package serve

// The linearizability-style differential harness: randomized concurrent
// schedules (internal/workload.Schedule) run against a sharded store,
// with every acknowledged batch replayed — in the global order the
// store's sequencer assigned — against a single sequential pam map, and
// every snapshot asserted to equal the sequential state at exactly its
// sequence position. Run under -race by `make race` and the CI
// serve-stress job.
//
// What the harness proves, per schedule:
//   - sequence numbers are unique and contiguous (one total write order);
//   - the final view equals the full sequential replay (so the assigned
//     order is the real one: a wrong order shows up as a wrong value on
//     any key written twice);
//   - every snapshot equals the sequential prefix state at its Seq —
//     atomic, gapless cuts (prefix consistency);
//   - snapshots taken by a writer right after an acknowledged batch have
//     Seq above the batch's (the real-time visibility bound);
//   - version vectors and Seq are monotonic across a snapshotter's
//     successive snapshots;
//   - merged cross-shard iteration yields strictly increasing keys and
//     agrees with the oracle's entries, full and range-bounded.

import (
	"errors"
	"runtime"
	"slices"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/workload"
	"repro/pam"
	"repro/rangetree"
)

// maxRecordedSnaps bounds the snapshots a background snapshotter
// records for oracle verification (it keeps snapshotting past the cap,
// still checking monotonicity).
const maxRecordedSnaps = 48

type ackedBatch struct {
	seq uint64
	ops []workload.KVOp
}

func toOps(b []workload.KVOp) []kvop {
	out := make([]kvop, len(b))
	for i, op := range b {
		if op.Del {
			out[i] = kvop{Kind: OpDelete, Key: op.Key}
		} else {
			out[i] = kvop{Kind: OpPut, Key: op.Key, Val: op.Val}
		}
	}
	return out
}

// mapSchedOpts gives odd-seeded schedules compressed leaf blocks, so
// the concurrency harness (and FuzzServe, which routes through it)
// exercises both layouts. The oracle map stays flat — it is compared
// only through Find/Entries, never merged with store maps.
func mapSchedOpts(seed uint64) pam.Options {
	if seed%2 == 1 {
		return pam.Options{Compress: pam.CompressUint64()}
	}
	return pam.Options{}
}

// runMapSchedule runs one randomized concurrent schedule against a
// sharded store (range- or hash-partitioned) and differentially
// verifies every snapshot. rebalance additionally keeps a concurrent
// rebalancer running (range stores only).
func runMapSchedule(t *testing.T, seed uint64, cfg workload.ScheduleCfg, shards int, ranged, rebalance bool) {
	t.Helper()
	opts := mapSchedOpts(seed)
	var s *sumStore
	if ranged {
		splits := make([]uint64, shards-1)
		for i := range splits {
			splits[i] = uint64(i+1) * cfg.KeySpace / uint64(shards)
		}
		s = NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](opts, splits)
	} else {
		var err error
		s, err = NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](opts, shards, mixHash)
		if err != nil {
			t.Fatalf("NewHashStore: %v", err)
		}
	}
	defer s.Close()

	sched := workload.Schedule(seed, cfg)
	var mu sync.Mutex
	var acked []ackedBatch
	var snaps []sumView

	var wg sync.WaitGroup
	for w := range sched {
		wg.Add(1)
		go func(batches []workload.KVBatch) {
			defer wg.Done()
			for _, b := range batches {
				seqn, err := s.Apply(toOps(b.Ops))
				if err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
				mu.Lock()
				acked = append(acked, ackedBatch{seq: seqn, ops: b.Ops})
				mu.Unlock()
				if b.Snap {
					v, _ := s.Snapshot()
					if v.Seq() <= seqn {
						t.Errorf("real-time violation: batch acked at seq %d invisible to later snapshot at seq %d", seqn, v.Seq())
					}
					mu.Lock()
					snaps = append(snaps, v)
					mu.Unlock()
				}
			}
		}(sched[w])
	}

	// A concurrent snapshotter: records early views for the oracle check
	// and asserts Seq/version monotonicity throughout.
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		var prev sumView
		have := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, _ := s.Snapshot()
			if have {
				if v.Seq() < prev.Seq() {
					t.Errorf("snapshot Seq went backwards: %d then %d", prev.Seq(), v.Seq())
				}
				for i, ver := range v.Versions() {
					if ver < prev.Versions()[i] {
						t.Errorf("shard %d version went backwards: %d then %d", i, prev.Versions()[i], ver)
					}
				}
			}
			prev, have = v, true
			mu.Lock()
			if len(snaps) < maxRecordedSnaps {
				snaps = append(snaps, v)
			}
			mu.Unlock()
			runtime.Gosched()
		}
	}()
	if rebalance && ranged {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Rebalance()
				runtime.Gosched()
			}
		}()
	}
	aux.Add(1)
	go func() { // replica reader: lock-free views, monotone and coherent
		defer aux.Done()
		replicaReadLoop(t, s.ReaderView, stop)
	}()

	wg.Wait()
	close(stop)
	aux.Wait()
	vfinal, _ := s.Snapshot()
	snaps = append(snaps, vfinal)
	verifyMapSnapshots(t, acked, snaps, cfg.KeySpace)
}

// replicaReadLoop hammers ReaderView until stop, asserting the replica
// staleness contract that holds under any schedule (rebalances
// included): per-shard epochs and versions only move forward across
// successive views, and each view is internally coherent — its merged
// iteration is strictly increasing and sums to its own AugVal (every
// structure in the view is an immutable published state, so a torn read
// would surface here).
func replicaReadLoop(t *testing.T, view func() (sumView, error), stop chan struct{}) {
	var prevE, prevV []uint64
	for {
		select {
		case <-stop:
			return
		default:
		}
		v, err := view()
		if err != nil {
			t.Errorf("ReaderView: %v", err)
			return
		}
		e, ver := v.Epochs(), v.Versions()
		if prevE != nil && len(e) == len(prevE) {
			for i := range e {
				if e[i] < prevE[i] {
					t.Errorf("replica epoch went backwards on shard %d: %d then %d", i, prevE[i], e[i])
				}
				if ver[i] < prevV[i] {
					t.Errorf("replica version went backwards on shard %d: %d then %d", i, prevV[i], ver[i])
				}
			}
		}
		prevE, prevV = e, ver
		if v.Seq() != 0 {
			t.Errorf("replica view reports Seq %d, want 0", v.Seq())
		}
		var n, sum int64
		var prev uint64
		first := true
		v.ForEach(func(k uint64, val int64) bool {
			if !first && k <= prev {
				t.Errorf("replica iteration not strictly increasing")
				return false
			}
			prev, first = k, false
			n++
			sum += val
			return true
		})
		if n != v.Size() {
			t.Errorf("replica iterated %d entries, Size says %d", n, v.Size())
		}
		if sum != v.AugVal() {
			t.Errorf("replica iterated sum %d, AugVal says %d", sum, v.AugVal())
		}
		runtime.Gosched()
	}
}

// verifyMapSnapshots replays the acknowledged batches in sequence order
// against a sequential pam oracle and checks every snapshot against the
// prefix state at its Seq.
func verifyMapSnapshots(t *testing.T, acked []ackedBatch, snaps []sumView, keySpace uint64) {
	t.Helper()
	sort.Slice(acked, func(i, j int) bool { return acked[i].seq < acked[j].seq })
	for i, b := range acked {
		if b.seq != uint64(i) {
			t.Fatalf("sequence numbers not contiguous: batch %d has seq %d", i, b.seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Seq() < snaps[j].Seq() })
	if last := snaps[len(snaps)-1]; last.Seq() != uint64(len(acked)) {
		t.Fatalf("final snapshot Seq = %d, want %d (all batches)", last.Seq(), len(acked))
	}

	oracle := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
	ai := 0
	for _, v := range snaps {
		for uint64(ai) < v.Seq() {
			for _, op := range acked[ai].ops {
				if op.Del {
					oracle = oracle.Delete(op.Key)
				} else {
					oracle = oracle.Insert(op.Key, op.Val)
				}
			}
			ai++
		}
		compareViewOracle(t, v, oracle, keySpace)
		if t.Failed() {
			t.Fatalf("snapshot at seq %d diverged from the sequential prefix", v.Seq())
		}
	}
}

// compareViewOracle checks a snapshot against the sequential state it
// must equal: size, entries, augmented values, range sums, point
// lookups, and merged ordered iteration.
func compareViewOracle(t *testing.T, v sumView, oracle pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]], keySpace uint64) {
	t.Helper()
	if got, want := v.Size(), oracle.Size(); got != want {
		t.Errorf("Size = %d, oracle %d", got, want)
		return
	}
	want := oracle.Entries()
	if got := v.Entries(); !slices.Equal(got, want) {
		t.Errorf("Entries diverged: view %v, oracle %v", got, want)
		return
	}
	if got, wantA := v.AugVal(), oracle.AugVal(); got != wantA {
		t.Errorf("AugVal = %d, oracle %d", got, wantA)
	}
	// Range sums and lookups at fixed fractions of the key space.
	for _, frac := range [][2]uint64{{0, 4}, {1, 3}, {2, 4}, {0, 1}} {
		lo := frac[0] * keySpace / 4
		hi := frac[1] * keySpace / 4
		if got, wantA := v.AugRange(lo, hi), oracle.AugRange(lo, hi); got != wantA {
			t.Errorf("AugRange(%d,%d) = %d, oracle %d", lo, hi, got, wantA)
		}
		gv, gok := v.Find(lo)
		wv, wok := oracle.Find(lo)
		if gv != wv || gok != wok {
			t.Errorf("Find(%d) = %d,%v, oracle %d,%v", lo, gv, gok, wv, wok)
		}
	}
	// Merged iteration: strictly increasing and equal to Entries.
	var prev uint64
	first := true
	i := 0
	v.ForEach(func(k uint64, val int64) bool {
		if !first && k <= prev {
			t.Errorf("merged iteration not strictly increasing: %d after %d", k, prev)
			return false
		}
		if i >= len(want) || want[i].Key != k || want[i].Val != val {
			t.Errorf("merged iteration diverged at index %d: (%d,%d)", i, k, val)
			return false
		}
		prev, first = k, false
		i++
		return true
	})
	if !t.Failed() && i != len(want) {
		t.Errorf("merged iteration visited %d entries, oracle %d", i, len(want))
	}
	// Bounded iteration against the oracle's Range.
	lo, hi := keySpace/4, 3*keySpace/4
	wantR := oracle.Range(lo, hi).Entries()
	var gotR []pam.KV[uint64, int64]
	v.ForEachRange(lo, hi, func(k uint64, val int64) bool {
		gotR = append(gotR, pam.KV[uint64, int64]{Key: k, Val: val})
		return true
	})
	if !slices.Equal(gotR, wantR) {
		t.Errorf("ForEachRange(%d,%d) = %v, oracle %v", lo, hi, gotR, wantR)
	}
}

// TestServeDifferentialSchedules is the headline check: 1000+
// randomized concurrent schedules, alternating hash and range
// partitioning across varied shard/writer/batch shapes, each
// differentially verified against the sequential oracle. Run under
// -race by `make race` and CI.
func TestServeDifferentialSchedules(t *testing.T) {
	schedules := 1000
	if testing.Short() {
		schedules = 120
	}
	for i := 0; i < schedules; i++ {
		cfg := workload.ScheduleCfg{
			Writers:   1 + i%3,
			Batches:   3 + i%5,
			BatchLen:  1 + i%8,
			KeySpace:  32 << (i % 3),
			DelEvery:  3,
			SnapEvery: 2,
		}
		shards := 1 + i%5
		runMapSchedule(t, uint64(i+1), cfg, shards, i%2 == 0, false)
		if t.Failed() {
			t.Fatalf("schedule %d (seed %d, %+v, shards %d) failed", i, i+1, cfg, shards)
		}
	}
}

// TestServeDifferentialDeep runs fewer, much larger schedules with a
// concurrent rebalancer in flight.
func TestServeDifferentialDeep(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := workload.ScheduleCfg{
			Writers:   4,
			Batches:   30,
			BatchLen:  16,
			KeySpace:  256,
			DelEvery:  3,
			SnapEvery: 3,
		}
		runMapSchedule(t, seed, cfg, 4, true, true)
		if t.Failed() {
			t.Fatalf("deep schedule seed %d failed", seed)
		}
	}
}

// ---- the async pipeline, differentially ----------------------------

// runAsyncMapSchedule is the async-aware variant of runMapSchedule:
// writers submit every batch fire-and-forget via ApplyAsync (retrying
// on ErrOverloaded under fast-fail backpressure), record the assigned
// seqno at enqueue, and only after the whole schedule has been
// submitted are the futures collected — out of order (newest first per
// writer) — and their acks verified. On top of runMapSchedule's
// oracle checks it proves:
//
//   - every future resolves with a nil error and its enqueue-time seq;
//   - ack timestamps are ordered: Enqueued <= Flushed <= Committed;
//   - futures resolve in sequence order: whenever a future has
//     resolved, so has every future with a smaller seq (checked per
//     writer via TryAck, and globally via Committed monotone in seq);
//   - a snapshot taken between enqueue and resolve already covers the
//     enqueued batch's sequence position (v.Seq() > f.Seq()), and the
//     oracle replay proves it shows the batch's prefix exactly;
//   - fast-fail rejections consume no sequence number (the dense-seq
//     check in verifyMapSnapshots would catch a burned seqno).
func runAsyncMapSchedule(t *testing.T, seed uint64, cfg workload.ScheduleCfg, shards int, ranged, rebalance bool, tun Tuning) {
	t.Helper()
	opts := mapSchedOpts(seed)
	var s *sumStore
	if ranged {
		splits := make([]uint64, shards-1)
		for i := range splits {
			splits[i] = uint64(i+1) * cfg.KeySpace / uint64(shards)
		}
		s = NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](opts, splits, tun)
	} else {
		var err error
		s, err = NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](opts, shards, mixHash, tun)
		if err != nil {
			t.Fatalf("NewHashStore: %v", err)
		}
	}
	defer s.Close()

	sched := workload.Schedule(seed, cfg)
	var mu sync.Mutex
	var acked []ackedBatch
	var snaps []sumView
	futsByWriter := make([][]*Future, len(sched))

	var wg sync.WaitGroup
	for w := range sched {
		wg.Add(1)
		go func(w int, batches []workload.KVBatch) {
			defer wg.Done()
			for _, b := range batches {
				var f *Future
				for {
					var err error
					f, err = s.ApplyAsync(toOps(b.Ops))
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("ApplyAsync: %v", err)
						return
					}
					runtime.Gosched() // fast-fail backpressure: retry
				}
				futsByWriter[w] = append(futsByWriter[w], f)
				mu.Lock()
				acked = append(acked, ackedBatch{seq: f.Seq(), ops: b.Ops})
				mu.Unlock()
				if b.Snap {
					// Between enqueue and resolve: the batch is already
					// sequenced, so the snapshot must sit above it (and
					// the oracle replay proves it contains the batch).
					v, _ := s.Snapshot()
					if v.Seq() <= f.Seq() {
						t.Errorf("snapshot at seq %d below enqueued batch seq %d", v.Seq(), f.Seq())
					}
					mu.Lock()
					if len(snaps) < maxRecordedSnaps {
						snaps = append(snaps, v)
					}
					mu.Unlock()
				}
			}
		}(w, sched[w])
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // concurrent snapshotter, as in runMapSchedule
		defer aux.Done()
		var prev sumView
		have := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, _ := s.Snapshot()
			if have && v.Seq() < prev.Seq() {
				t.Errorf("snapshot Seq went backwards: %d then %d", prev.Seq(), v.Seq())
			}
			prev, have = v, true
			mu.Lock()
			if len(snaps) < maxRecordedSnaps {
				snaps = append(snaps, v)
			}
			mu.Unlock()
			runtime.Gosched()
		}
	}()
	if rebalance && ranged {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Rebalance()
				runtime.Gosched()
			}
		}()
	}

	wg.Wait()
	close(stop)
	aux.Wait()

	// Collect out of order: newest first within each writer. When a
	// future has resolved, every earlier (smaller-seq) future of the
	// same writer must have resolved too — resolution follows the
	// sequencer, not completion luck.
	var acks []Ack
	for w, futs := range futsByWriter {
		for i := len(futs) - 1; i >= 0; i-- {
			a := futs[i].Wait()
			if a.Err != nil {
				t.Fatalf("writer %d future seq %d resolved with error: %v", w, futs[i].Seq(), a.Err)
			}
			if a.Seq != futs[i].Seq() {
				t.Fatalf("ack seq %d != enqueue seq %d", a.Seq, futs[i].Seq())
			}
			if a.Flushed.Before(a.Enqueued) || a.Committed.Before(a.Flushed) {
				t.Fatalf("ack timestamps out of order: enq %v flush %v commit %v", a.Enqueued, a.Flushed, a.Committed)
			}
			for j := 0; j < i; j++ {
				if _, ok := futs[j].TryAck(); !ok {
					t.Fatalf("future seq %d resolved before earlier future seq %d of the same writer", futs[i].Seq(), futs[j].Seq())
				}
			}
			acks = append(acks, a)
		}
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i].Seq < acks[j].Seq })
	for i := 1; i < len(acks); i++ {
		if acks[i].Committed.Before(acks[i-1].Committed) {
			t.Errorf("commit timestamps violate sequence order: seq %d at %v before seq %d at %v",
				acks[i].Seq, acks[i].Committed, acks[i-1].Seq, acks[i-1].Committed)
		}
	}

	vfinal, _ := s.Snapshot()
	snaps = append(snaps, vfinal)
	verifyMapSnapshots(t, acked, snaps, cfg.KeySpace)
}

// asyncHarnessTuning varies the pipeline knobs across schedules: the
// default greedy pipeline, tiny mailbox/op budgets (full-mailbox
// admission paths), non-zero coalescing windows (max-wait flushes), and
// every seventh schedule fast-fail backpressure (writers retry).
func asyncHarnessTuning(i int) Tuning {
	var tun Tuning
	switch i % 4 {
	case 0: // defaults: deep mailboxes, greedy flush
	case 1:
		tun.MailboxDepth = 1 + i%3
		tun.ShardOpBudget = 4 + i%13
	case 2:
		tun.FlushWait = time.Duration(50+50*(i%7)) * time.Microsecond
		tun.FlushOps = 2 + i%11
	case 3:
		tun.MailboxDepth = 2
		tun.ShardOpBudget = 8
		tun.FlushWait = 200 * time.Microsecond
	}
	if i%7 == 3 {
		tun.Backpressure = BackpressureFastFail
	}
	return tun
}

// TestServeAsyncDifferentialSchedules is the async half of the headline
// check: 1000+ randomized schedules of fire-and-forget writers across
// varied partitioning, mailbox bounds, backpressure policies, and
// coalescing windows, each differentially verified against the
// sequential oracle. Run under -race by `make race` and CI.
func TestServeAsyncDifferentialSchedules(t *testing.T) {
	schedules := 1000
	if testing.Short() {
		schedules = 120
	}
	for i := 0; i < schedules; i++ {
		cfg := workload.ScheduleCfg{
			Writers:   1 + i%3,
			Batches:   3 + i%5,
			BatchLen:  1 + i%8,
			KeySpace:  32 << (i % 3),
			DelEvery:  3,
			SnapEvery: 2,
		}
		shards := 1 + i%5
		tun := asyncHarnessTuning(i)
		runAsyncMapSchedule(t, uint64(i+1), cfg, shards, i%2 == 0, false, tun)
		if t.Failed() {
			t.Fatalf("async schedule %d (seed %d, %+v, shards %d, tuning %+v) failed", i, i+1, cfg, shards, tun)
		}
	}
}

// TestServeAsyncDeep runs fewer, larger async schedules with a
// concurrent rebalancer in flight and tight budgets, so blocked
// admission, coalescing holds, markers, and route changes interleave.
func TestServeAsyncDeep(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := workload.ScheduleCfg{
			Writers:   4,
			Batches:   30,
			BatchLen:  16,
			KeySpace:  256,
			DelEvery:  3,
			SnapEvery: 3,
		}
		tun := Tuning{MailboxDepth: 2, ShardOpBudget: 48, FlushWait: 100 * time.Microsecond, FlushOps: 24}
		runAsyncMapSchedule(t, seed, cfg, 4, true, true, tun)
		if t.Failed() {
			t.Fatalf("deep async schedule seed %d failed", seed)
		}
	}
}

// ---- the spatial store, differentially -----------------------------

// gridPoint quantizes an op's unit-square coordinates onto a small
// integer grid, so concurrent writers collide on points and deletes hit
// live entries.
func gridPoint(a, b float64) rangetree.Point {
	const grid = 16
	return rangetree.Point{X: float64(int(a * grid)), Y: float64(int(b * grid))}
}

type pointAck struct {
	seq uint64
	del bool
	p   rangetree.Point
	w   int64
}

// runPointSchedule runs concurrent writers + snapshotters + a
// rebalancer against a sharded PointStore with the given ladder write
// buffer capacity (small capacities pack carry cascades between
// snapshots), then differentially verifies every snapshot.
// carryWorkers > 0 moves the carry cascades onto a background pool
// (MaxPendingCarries 2, so the backpressure path runs too) while the
// same oracle checks apply — deferred carries must be invisible to
// queries.
func runPointSchedule(t *testing.T, seed uint64, writers, n, shards, flushCap, carryWorkers int) {
	t.Helper()
	old := dynamic.SetFlushCap(flushCap)
	defer dynamic.SetFlushCap(old)

	splits := make([]float64, shards-1)
	for i := range splits {
		splits[i] = float64(i+1) * 16 / float64(shards)
	}
	s := NewPointStore(pam.Options{}, splits,
		Tuning{CarryWorkers: carryWorkers, MaxPendingCarries: 2})
	defer s.Close()

	mix := workload.Mix{Insert: 8, Delete: 4, Snapshot: 3}
	streams := workload.WriterOps(seed, writers, n, mix)

	var mu sync.Mutex
	var acked []pointAck
	var snaps []PointView

	var wg sync.WaitGroup
	for _, ops := range streams {
		wg.Add(1)
		go func(ops []workload.Op) {
			defer wg.Done()
			lastSeq := uint64(0)
			wrote := false
			for _, op := range ops {
				p := gridPoint(op.A, op.B)
				switch op.Kind {
				case workload.OpInsert:
					seqn, err := s.Insert(p, op.W)
					if err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
					mu.Lock()
					acked = append(acked, pointAck{seq: seqn, p: p, w: op.W})
					mu.Unlock()
					lastSeq, wrote = seqn, true
				case workload.OpDelete:
					seqn, err := s.Delete(p)
					if err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
					mu.Lock()
					acked = append(acked, pointAck{seq: seqn, del: true, p: p})
					mu.Unlock()
					lastSeq, wrote = seqn, true
				case workload.OpSnapshot:
					v, _ := s.Snapshot()
					if wrote && v.Seq() <= lastSeq {
						t.Errorf("real-time violation: write at seq %d invisible to later snapshot at seq %d", lastSeq, v.Seq())
					}
					mu.Lock()
					if len(snaps) < maxRecordedSnaps {
						snaps = append(snaps, v)
					}
					mu.Unlock()
				}
			}
		}(ops)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // rebalancer in flight
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Rebalance()
			runtime.Gosched()
		}
	}()
	aux.Add(1)
	go func() { // replica reader racing the background carries
		defer aux.Done()
		var prevE []uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := s.ReaderView()
			if err != nil {
				t.Errorf("ReaderView: %v", err)
				return
			}
			e := v.Epochs()
			if prevE != nil {
				for i := range e {
					if e[i] < prevE[i] {
						t.Errorf("replica epoch went backwards on shard %d: %d then %d", i, prevE[i], e[i])
					}
				}
			}
			prevE = e
			// Internal coherence of the published trees: the signed-sum
			// count over everything must equal the summed sizes, exactly,
			// even while overflow runs await their background carry.
			if got, want := v.QueryCount(everything), v.Size(); got != want {
				t.Errorf("replica QueryCount(everything) = %d, Size = %d", got, want)
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	vfinal, _ := s.Snapshot()
	snaps = append(snaps, vfinal)
	verifyPointSnapshots(t, acked, snaps)
}

// verifyPointSnapshots replays the acknowledged point ops in sequence
// order against a brute-force oracle and checks each snapshot's size,
// rectangle sums/counts, full report, and point lookups.
func verifyPointSnapshots(t *testing.T, acked []pointAck, snaps []PointView) {
	t.Helper()
	sort.Slice(acked, func(i, j int) bool { return acked[i].seq < acked[j].seq })
	for i, a := range acked {
		if a.seq != uint64(i) {
			t.Fatalf("sequence numbers not contiguous: op %d has seq %d", i, a.seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Seq() < snaps[j].Seq() })
	oracle := map[rangetree.Point]int64{}
	ai := 0
	rects := []rangetree.Rect{
		{XLo: 0, XHi: 16, YLo: 0, YHi: 16},
		{XLo: 3, XHi: 9, YLo: 2, YHi: 14},
		{XLo: 7.5, XHi: 12, YLo: 0, YHi: 7.5},
	}
	for _, v := range snaps {
		for uint64(ai) < v.Seq() {
			a := acked[ai]
			if a.del {
				delete(oracle, a.p)
			} else {
				oracle[a.p] += a.w
			}
			ai++
		}
		if got, want := v.Size(), int64(len(oracle)); got != want {
			t.Fatalf("snapshot seq %d: Size = %d, oracle %d", v.Seq(), got, want)
		}
		for _, r := range rects {
			var wantSum, wantCnt int64
			for p, w := range oracle {
				if p.X >= r.XLo && p.X <= r.XHi && p.Y >= r.YLo && p.Y <= r.YHi {
					wantSum += w
					wantCnt++
				}
			}
			if got := v.QuerySum(r); got != wantSum {
				t.Fatalf("snapshot seq %d: QuerySum(%v) = %d, oracle %d", v.Seq(), r, got, wantSum)
			}
			if got := v.QueryCount(r); got != wantCnt {
				t.Fatalf("snapshot seq %d: QueryCount(%v) = %d, oracle %d", v.Seq(), r, got, wantCnt)
			}
		}
		rep := v.ReportAll(everything)
		if len(rep) != len(oracle) {
			t.Fatalf("snapshot seq %d: ReportAll returned %d points, oracle %d", v.Seq(), len(rep), len(oracle))
		}
		for i, p := range rep {
			if i > 0 {
				prev := rep[i-1]
				if p.X < prev.X || (p.X == prev.X && p.Y <= prev.Y) {
					t.Fatalf("snapshot seq %d: ReportAll not sorted at %d", v.Seq(), i)
				}
			}
			if w, ok := oracle[p.Point]; !ok || w != p.W {
				t.Fatalf("snapshot seq %d: reported (%v, %d), oracle %d,%v", v.Seq(), p.Point, p.W, w, ok)
			}
			if w, ok := v.Weight(p.Point); !ok || w != p.W {
				t.Fatalf("snapshot seq %d: Weight(%v) = %d,%v, report says %d", v.Seq(), p.Point, w, ok, p.W)
			}
		}
	}
}

// TestServePointsDifferential exercises the ladder-backed spatial store
// under concurrency, with small flush capacities so snapshot
// acquisition interleaves with carry cascades.
func TestServePointsDifferential(t *testing.T) {
	for _, tc := range []struct {
		seed               uint64
		writers, n, shards int
		flushCap           int
		carryWorkers       int
	}{
		{seed: 1, writers: 3, n: 120, shards: 3, flushCap: 4},
		{seed: 2, writers: 2, n: 200, shards: 2, flushCap: 16},
		{seed: 3, writers: 4, n: 80, shards: 4, flushCap: 2},
		{seed: 4, writers: 3, n: 160, shards: 3, flushCap: 3, carryWorkers: 2},
		{seed: 5, writers: 4, n: 120, shards: 2, flushCap: 2, carryWorkers: 1},
	} {
		runPointSchedule(t, tc.seed, tc.writers, tc.n, tc.shards, tc.flushCap, tc.carryWorkers)
		if t.Failed() {
			t.Fatalf("point schedule %+v failed", tc)
		}
	}
}
