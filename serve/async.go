package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrClosed is returned (stickily) by Apply/ApplyAsync and friends
	// once the store has been closed. It replaces the old panic: racing
	// a writer against Close is now a clean error, not a crash.
	ErrClosed = errors.New("serve: store is closed")

	// ErrOverloaded is returned by a BackpressureFastFail store when a
	// batch cannot be admitted because one of its target shards is over
	// its mailbox-depth or in-flight-ops budget. The batch consumed no
	// sequence number and left no trace; the caller may retry.
	ErrOverloaded = errors.New("serve: shard over admission budget")

	// ErrNoShards is returned by the store constructors when asked for
	// fewer than one shard. It replaces the old panic, matching the
	// ErrClosed convention: misconfiguration is an error, not a crash.
	ErrNoShards = errors.New("serve: store needs at least one shard")

	// ErrRebalanceShards is returned by Rebalance when the split
	// function produces a different shard count: the shard-goroutine
	// topology is fixed for the store's lifetime. The store keeps
	// serving with its old distribution.
	ErrRebalanceShards = errors.New("serve: rebalance must preserve the shard count")

	// ErrNaNPoint is returned by PointStore writes containing a point
	// with a NaN coordinate. NaN is unordered, so such a point could
	// never be routed, range-queried, or rebalanced coherently; writes
	// reject it up front, before a sequence number is consumed.
	ErrNaNPoint = errors.New("serve: point has a NaN coordinate")
)

// Backpressure selects what a writer experiences when a target shard's
// admission budget (Tuning.MailboxDepth / Tuning.ShardOpBudget) is
// exhausted.
type Backpressure uint8

const (
	// BackpressureBlock (the default) parks the writer until the shard
	// drains enough budget, then admits the batch. Writers always make
	// progress: budget is only held by queued sub-batches, and shards
	// drain their queues without ever taking the sequencer lock.
	BackpressureBlock Backpressure = iota
	// BackpressureFastFail rejects the batch immediately with
	// ErrOverloaded instead of waiting.
	BackpressureFastFail
)

// Tuning configures the asynchronous write pipeline. The zero value
// (and any field left zero) picks the defaults below, which match the
// engine's historical behavior: pass nothing to the constructors to get
// exactly the pre-async engine.
type Tuning struct {
	// MailboxDepth bounds the queued-but-unapplied sub-batches per
	// shard. A batch whose target shard already has MailboxDepth
	// sub-batches in flight feels backpressure. Default 64.
	MailboxDepth int
	// ShardOpBudget bounds the total queued-but-unapplied ops per
	// shard (admission control by weight, not just count). A batch
	// larger than the whole budget is still admitted when its shard is
	// idle, so no batch is unschedulable. Default 65536.
	ShardOpBudget int
	// Backpressure picks blocking or fast-fail admission. Default
	// BackpressureBlock.
	Backpressure Backpressure
	// FlushOps is the size trigger of the per-shard flush loop: a
	// shard applies its held ops once they reach this count. Default
	// 4096 (the old maxCoalesce).
	FlushOps int
	// FlushWait is the time trigger: how long a shard may hold a
	// sub-batch hoping to coalesce more before it must flush. Zero
	// (the default) means flush as soon as the mailbox has no more
	// immediately available work — the historical greedy behavior.
	// Synchronous writes (Apply/Put/Delete) always flush immediately
	// regardless; only async batches wait out the window.
	FlushWait time.Duration
	// AutoRebalance, when non-nil, starts a policy goroutine that
	// calls Rebalance automatically on sustained shard-size or
	// flush-latency skew. Only meaningful for range-partitioned
	// Store/PointStore (hash stores and the durable stores, whose
	// routing is part of the on-disk schema, ignore it). Default nil:
	// rebalance stays explicit.
	AutoRebalance *AutoRebalance
	// CarryWorkers, when > 0, moves ladder carry cascades off the
	// shard goroutines (PointStore and DurablePointStore only): a pool
	// of that many workers merges spilled write-buffer runs into the
	// ladder levels in the background while shards keep accepting
	// writes, so a deep carry is no longer a p99 update-latency spike.
	// Zero (the default) keeps carries synchronous — the historical
	// behavior.
	CarryWorkers int
	// MaxPendingCarries bounds the spilled-but-uncarried overflow runs
	// per shard when CarryWorkers > 0: at the bound the shard blocks
	// on the in-flight background carry, which surfaces upstream as
	// ordinary admission backpressure. Default 4.
	MaxPendingCarries int
	// ReplicaRefresh throttles per-shard replica publication: a shard
	// republishes its ReaderView slot at most once per this interval
	// (deferred publishes land when the window closes, even if the
	// shard goes idle). Zero (the default) publishes after every
	// flush.
	ReplicaRefresh time.Duration
}

// withDefaults normalizes zero fields to the documented defaults.
func (t Tuning) withDefaults() Tuning {
	if t.MailboxDepth <= 0 {
		t.MailboxDepth = 64
	}
	if t.ShardOpBudget <= 0 {
		t.ShardOpBudget = 1 << 16
	}
	if t.FlushOps <= 0 {
		t.FlushOps = 4096
	}
	if t.FlushWait < 0 {
		t.FlushWait = 0
	}
	if t.CarryWorkers < 0 {
		t.CarryWorkers = 0
	}
	if t.MaxPendingCarries <= 0 {
		t.MaxPendingCarries = 4
	}
	if t.ReplicaRefresh < 0 {
		t.ReplicaRefresh = 0
	}
	return t
}

// AutoRebalance is the automatic rebalance policy: every CheckEvery it
// samples shard sizes and flush-latency EWMAs, and after Sustain
// consecutive skewed samples it triggers one Rebalance.
type AutoRebalance struct {
	// CheckEvery is the sampling period. Default 100ms.
	CheckEvery time.Duration
	// SizeSkew fires when max shard size > SizeSkew * mean shard size
	// (must exceed 1; default 2). Sampling takes a snapshot, so it
	// costs one marker round per check.
	SizeSkew float64
	// LatencySkew, when > 1, fires when the largest per-shard flush
	// latency EWMA exceeds LatencySkew * the mean EWMA and every shard
	// has reported at least one flush. Zero disables the latency
	// trigger.
	LatencySkew float64
	// Sustain is how many consecutive skewed samples arm the trigger
	// (debounce). Default 2.
	Sustain int
	// MinSize suppresses the size trigger below this total store size,
	// where skew is noise. Default 128.
	MinSize int64
}

func (ar AutoRebalance) withDefaults() AutoRebalance {
	if ar.CheckEvery <= 0 {
		ar.CheckEvery = 100 * time.Millisecond
	}
	if ar.SizeSkew <= 1 {
		ar.SizeSkew = 2
	}
	if ar.Sustain <= 0 {
		ar.Sustain = 2
	}
	if ar.MinSize <= 0 {
		ar.MinSize = 128
	}
	return ar
}

// Ack is the final result of one write batch: its position in the
// global sequence plus the pipeline timestamps.
type Ack struct {
	// Seq is the batch's global sequence number, assigned at enqueue.
	Seq uint64
	// Err is nil for a committed batch. For durable stores it carries
	// the WAL/fsync error (the batch is applied in memory but NOT
	// durable); ErrClosed/ErrOverloaded are returned by ApplyAsync
	// itself and never appear here.
	Err error
	// Enqueued is when the batch was sequenced and its sub-batches
	// entered the shard mailboxes.
	Enqueued time.Time
	// Flushed is when the last involved shard applied its sub-batch
	// (for an empty batch it equals Enqueued).
	Flushed time.Time
	// Committed is when the batch was resolved: after every batch with
	// a smaller sequence number, and — on durable stores — after the
	// WAL fsync covering it.
	Committed time.Time
}

// QueueLatency is the enqueue-to-applied time: mailbox wait plus
// coalescing hold plus the bulk apply.
func (a Ack) QueueLatency() time.Duration { return a.Flushed.Sub(a.Enqueued) }

// CommitLatency is the full enqueue-to-resolve time a caller of the
// sync Apply would have observed.
func (a Ack) CommitLatency() time.Duration { return a.Committed.Sub(a.Enqueued) }

// Future is the completion handle of an asynchronous write. Futures
// resolve in global sequence order — a future never resolves before
// every batch sequenced ahead of it has resolved — so per shard (and in
// fact across the whole store) acks arrive in the same order the
// sequencer assigned.
type Future struct {
	seq uint64
	enq time.Time

	// pending counts involved shards that have not yet applied their
	// sub-batch; the shard that drops it to zero stamps appliedAt and
	// closes applied.
	pending   atomic.Int32
	appliedAt time.Time
	applied   chan struct{}

	ack  Ack
	done chan struct{}
}

// Seq returns the batch's global sequence number, known at enqueue.
func (f *Future) Seq() uint64 { return f.seq }

// Done returns a channel closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the future resolves and returns its Ack. Every
// future resolves eventually, including when the store is closed with
// the batch still in flight.
func (f *Future) Wait() Ack {
	<-f.done
	return f.ack
}

// TryAck returns the Ack if the future has resolved.
func (f *Future) TryAck() (Ack, bool) {
	select {
	case <-f.done:
		return f.ack, true
	default:
		return Ack{}, false
	}
}

// futureQueue is the unbounded FIFO feeding the resolver goroutine.
// Unbounded on purpose: producers push while holding the sequencer
// lock, so a bounded queue would let the resolver (which may take the
// sequencer lock during a durable auto-checkpoint) deadlock against a
// blocked producer. Occupancy is in practice bounded by the per-shard
// admission budgets.
type futureQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Future
	head   int
	closed bool
}

func newFutureQueue() *futureQueue {
	q := &futureQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *futureQueue) push(f *Future) {
	q.mu.Lock()
	q.items = append(q.items, f)
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *futureQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pop blocks until an item is available or the queue is closed and
// drained.
func (q *futureQueue) pop() (*Future, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return nil, false
	}
	f := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = q.items[:0], 0
	}
	return f, true
}

// ShardStats is one shard's live pipeline counters, as reported by
// Store.Stats/PointStore.Stats.
type ShardStats struct {
	// QueuedBatches / QueuedOps are the sub-batches and ops admitted
	// but not yet applied (the budget admission control charges
	// against these).
	QueuedBatches int64
	QueuedOps     int64
	// AppliedBatches / AppliedOps count everything the shard has
	// applied since the store opened.
	AppliedBatches uint64
	AppliedOps     uint64
	// FlushLatency is an EWMA of enqueue-to-applied latency of the
	// oldest sub-batch in each flush; zero until the first flush.
	FlushLatency time.Duration
}

// startAutoRebalance runs the policy loop: sample skew every
// CheckEvery, rebalance after Sustain consecutive skewed samples. The
// loop must be stopped (close stop + wait wg) before the engine closes;
// a rebalance error (ErrClosed racing shutdown) just ends the streak.
func startAutoRebalance[O, T any](e *engine[O, T], ar AutoRebalance, size func(T) int64, rebalance func() (bool, error), stop <-chan struct{}, wg *sync.WaitGroup) {
	ar = ar.withDefaults()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(ar.CheckEvery)
		defer ticker.Stop()
		streak := 0
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if e.skewed(ar, size) {
				streak++
			} else {
				streak = 0
			}
			if streak >= ar.Sustain {
				rebalance() //nolint:errcheck // ErrClosed here means shutdown is racing us
				streak = 0
			}
		}
	}()
}

// skewed samples the policy's two triggers.
func (e *engine[O, T]) skewed(ar AutoRebalance, size func(T) int64) bool {
	if len(e.shards) > 1 {
		states, _, _, _, ok := e.trySnapshotWith(nil)
		if !ok {
			return false // racing Close; the policy is being stopped
		}
		var total, maxSz int64
		for _, st := range states {
			sz := size(st)
			total += sz
			if sz > maxSz {
				maxSz = sz
			}
		}
		if total >= ar.MinSize &&
			float64(maxSz)*float64(len(states)) > ar.SizeSkew*float64(total) {
			return true
		}
	}
	if ar.LatencySkew > 1 && len(e.shards) > 1 {
		var sum, maxL int64
		n := 0
		for _, s := range e.shards {
			l := s.flushNanos.Load()
			if l > 0 {
				sum += l
				n++
				if l > maxL {
					maxL = l
				}
			}
		}
		if n == len(e.shards) &&
			float64(maxL)*float64(n) > ar.LatencySkew*float64(sum) {
			return true
		}
	}
	return false
}
