// Package stabbing implements rectangle stabbing queries from the
// follow-up paper "Parallel Range, Segment and Rectangle Queries with
// Augmented Maps" (Sun & Blelloch, arXiv:1803.08621, §5): maintain a set
// of closed axis-parallel rectangles and, for a query point (x, y),
// count or report the rectangles containing it.
//
// Counting composes the §5.1 interval-map idea in both dimensions. A
// rectangle [xl, xh] x [yl, yh] contains (x, y) iff its x-extent stabs x
// and its y-extent stabs y, and since no rectangle can be simultaneously
// entirely left and entirely right of x,
//
//	count(x, y) = #(xl <= x, y-extent stabs y) - #(xh < x, y-extent stabs y)
//
// Each term is a prefix sum over an endpoint-keyed augmented map — one
// keyed by left x-endpoints ("opens"), one by right ("closes") — whose
// augmented values are *nested y-interval count structures*: the
// subtree's rectangles keyed by yl and by yh, combined by persistent
// parallel union, so a nested structure answers "how many y-extents stab
// y" as a rank difference in O(log n). AugProject folds the O(log n)
// nested structures on the prefix without ever invoking the expensive
// union Combine: O(log^2 n) per count query.
//
// Reporting uses a third map with the cheap interval-tree augmentation
// alone — rectangles keyed by left x-endpoint, augmented with the
// maximum right x-endpoint: an AugFilter keeps the rectangles whose
// x-extent stabs x in output-sensitive time, and the y-extent check
// filters the survivors. (The report path deliberately avoids splitting
// the union-augmented endpoint maps: restricting those recombines nested
// maps along the split path, which is not polylogarithmic.) With kx
// rectangles stabbed in x alone, ReportStab costs
// O(log n + kx log(n/kx + 1)).
//
// Rectangles are closed on all sides and behave as a set: exact
// duplicates collapse. All maps are persistent — snapshots taken before
// a Merge remain valid — and Build and Merge run in parallel.
package stabbing

import (
	"math"
	"slices"

	"repro/internal/dynamic"
	"repro/internal/parallel"
	"repro/pam"
)

// Rect is a closed axis-parallel rectangle [XLo, XHi] x [YLo, YHi].
type Rect struct {
	XLo, XHi, YLo, YHi float64
}

// Contains reports whether the rectangle contains the point (x, y).
func (r Rect) Contains(x, y float64) bool {
	return r.XLo <= x && x <= r.XHi && r.YLo <= y && y <= r.YHi
}

// Key orders; ties break lexicographically on the remaining coordinates
// so distinct rectangles compare distinct and ±Inf sentinels bound
// exactly the prefixes the queries need.

func lessXLo(a, b Rect) bool {
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	return a.YHi < b.YHi
}

func lessXHi(a, b Rect) bool {
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	return a.YHi < b.YHi
}

func lessYLo(a, b Rect) bool {
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	if a.YHi != b.YHi {
		return a.YHi < b.YHi
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}

func lessYHi(a, b Rect) bool {
	if a.YHi != b.YHi {
		return a.YHi < b.YHi
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}

// yloKey / yhiKey order the nested count maps by (YLo, ...) and
// (YHi, ...) with no augmentation; stab counting is a rank difference.
type yloKey struct{}

func (yloKey) Less(a, b Rect) bool                 { return lessYLo(a, b) }
func (yloKey) Id() struct{}                        { return struct{}{} }
func (yloKey) Base(Rect, struct{}) struct{}        { return struct{}{} }
func (yloKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type yhiKey struct{}

func (yhiKey) Less(a, b Rect) bool                 { return lessYHi(a, b) }
func (yhiKey) Id() struct{}                        { return struct{}{} }
func (yhiKey) Base(Rect, struct{}) struct{}        { return struct{}{} }
func (yhiKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type yloMap = pam.AugMap[Rect, struct{}, struct{}, yloKey]
type yhiMap = pam.AugMap[Rect, struct{}, struct{}, yhiKey]

// ySet is the nested y-interval count structure: the subtree's
// rectangles keyed by bottom edge and by top edge.
type ySet struct {
	byLo yloMap
	byHi yhiMap
}

func (s ySet) union(o ySet) ySet {
	return ySet{byLo: s.byLo.Union(o.byLo), byHi: s.byHi.Union(o.byHi)}
}

func singletonYSet(r Rect) ySet {
	return ySet{byLo: yloMap{}.Insert(r, struct{}{}), byHi: yhiMap{}.Insert(r, struct{}{})}
}

// countStab counts rectangles whose y-extent contains y in O(log n):
// those whose bottom edge is at or below y minus those whose top edge is
// strictly below y (the two miss-sets are disjoint, so
// inclusion-exclusion is exact).
func (s ySet) countStab(y float64) int64 {
	pos, neg := math.Inf(1), math.Inf(-1)
	bottomAtOrBelow := s.byLo.Rank(Rect{YLo: y, YHi: pos, XLo: pos, XHi: pos}) // #(YLo <= y)
	topBelow := s.byHi.Rank(Rect{YHi: y, YLo: neg, XLo: neg, XHi: neg})        // #(YHi < y)
	return bottomAtOrBelow - topBelow
}

// opensEntry: rectangles keyed by left x-endpoint with the nested
// y-interval count structure.
type opensEntry struct{}

func (opensEntry) Less(a, b Rect) bool { return lessXLo(a, b) }
func (opensEntry) Id() ySet            { return ySet{} }
func (opensEntry) Base(r Rect, _ struct{}) ySet {
	return singletonYSet(r)
}
func (opensEntry) Combine(x, y ySet) ySet { return x.union(y) }

// reportEntry: rectangles keyed by left x-endpoint, augmented with the
// maximum right x-endpoint (the §5.1 interval-map augmentation) for
// output-sensitive stabbing reports.
type reportEntry struct{}

func (reportEntry) Less(a, b Rect) bool             { return lessXLo(a, b) }
func (reportEntry) Id() float64                     { return math.Inf(-1) }
func (reportEntry) Base(r Rect, _ struct{}) float64 { return r.XHi }
func (reportEntry) Combine(x, y float64) float64    { return max(x, y) }

// closesEntry: rectangles keyed by right x-endpoint with the nested
// y-interval count structure.
type closesEntry struct{}

func (closesEntry) Less(a, b Rect) bool { return lessXHi(a, b) }
func (closesEntry) Id() ySet            { return ySet{} }
func (closesEntry) Base(r Rect, _ struct{}) ySet {
	return singletonYSet(r)
}
func (closesEntry) Combine(x, y ySet) ySet { return x.union(y) }

type opensMap = pam.AugMap[Rect, struct{}, ySet, opensEntry]
type closesMap = pam.AugMap[Rect, struct{}, ySet, closesEntry]
type reportMap = pam.AugMap[Rect, struct{}, float64, reportEntry]

// bufKey orders buffered rectangles in the canonical
// (xLo, xHi, yLo, yHi) order, unaugmented.
type bufKey struct{}

func (bufKey) Less(a, b Rect) bool                 { return lessXLo(a, b) }
func (bufKey) Id() struct{}                        { return struct{}{} }
func (bufKey) Base(Rect, struct{}) struct{}        { return struct{}{} }
func (bufKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// buffer is the secondary update layer (see internal/dynamic).
type buffer = dynamic.Buffer[Rect, struct{}, bufKey]

// Map is a persistent rectangle-stabbing structure. The zero value is
// empty and usable. As with rangetree, the union-valued augmentations
// make single-rectangle tree updates linear in the worst case, so the
// structure is layered (internal/dynamic): an immutable bulk layer —
// the three maps above, built and merged in parallel — plus a small
// persistent update buffer that queries consult alongside it. Insert
// and Delete write the buffer in O(log n) and fold it down with a full
// parallel rebuild once it outgrows a fixed fraction of the bulk layer,
// for amortized O(polylog n) updates; Build and Merge return fully
// folded maps. All versions persist: updates return new handles and
// old handles keep answering from exactly the contents they had.
type Map struct {
	opens  opensMap
	closes closesMap
	report reportMap
	buf    buffer
}

// New returns an empty rectangle map with the given options.
func New(opts pam.Options) Map {
	return Map{
		opens:  pam.NewAugMap[Rect, struct{}, ySet, opensEntry](opts),
		closes: pam.NewAugMap[Rect, struct{}, ySet, closesEntry](opts),
		report: pam.NewAugMap[Rect, struct{}, float64, reportEntry](opts),
	}
}

// Build returns a map (with m's options) over the given rectangles
// (duplicates collapse). O(n log^2 n) work, polylogarithmic span; the
// three constituent maps build in parallel.
func (m Map) Build(rects []Rect) Map {
	items := make([]pam.KV[Rect, struct{}], len(rects))
	for i, r := range rects {
		items[i] = pam.KV[Rect, struct{}]{Key: r}
	}
	var out Map
	parallel.Do3(
		func() { out.opens = m.opens.Build(items, nil) },
		func() { out.closes = m.closes.Build(items, nil) },
		func() { out.report = m.report.Build(items, nil) },
	)
	return out
}

// Insert returns a map with the rectangle added (a duplicate is a
// no-op). Amortized O(polylog n): the rectangle lands in the update
// buffer, which periodically folds into the bulk layer with a parallel
// rebuild.
func (m Map) Insert(r Rect) Map {
	nm := m
	nm.buf = m.buf.Insert(r, struct{}{}, struct{}{}, m.opens.Contains(r), nil)
	if nm.buf.ShouldFold(nm.opens.Size()) {
		return nm.fold()
	}
	return nm
}

// Delete returns a map without the rectangle; deleting an absent
// rectangle is a no-op. Amortized O(polylog n).
func (m Map) Delete(r Rect) Map {
	nm := m
	nm.buf = m.buf.Delete(r, struct{}{}, m.opens.Contains(r))
	if nm.buf.ShouldFold(nm.opens.Size()) {
		return nm.fold()
	}
	return nm
}

// fold rebuilds the bulk layer over the buffered updates, returning a
// map with an empty buffer.
func (m Map) fold() Map {
	bulk := Map{opens: m.opens, closes: m.closes, report: m.report}
	if m.buf.IsEmpty() {
		return bulk
	}
	return bulk.Build(m.buf.ApplyKeys(m.opens.Keys()))
}

// Pending returns the number of buffered updates not yet folded into
// the bulk layer (0 after Build, Merge, or a fold).
func (m Map) Pending() int64 { return m.buf.Pending() }

// Contains reports whether the rectangle is present.
func (m Map) Contains(r Rect) bool { return m.buf.Contains(r, m.opens.Contains(r)) }

// Merge returns the union of two rectangle maps (parallel, persistent),
// folding both sides' buffered updates first.
func (m Map) Merge(other Map) Map {
	a, b := m.fold(), other.fold()
	var out Map
	parallel.Do3(
		func() { out.opens = a.opens.Union(b.opens) },
		func() { out.closes = a.closes.Union(b.closes) },
		func() { out.report = a.report.Union(b.report) },
	)
	return out
}

// Size returns the number of distinct rectangles.
func (m Map) Size() int64 { return m.buf.LogicalSize(m.opens.Size()) }

// IsEmpty reports whether the map is empty.
func (m Map) IsEmpty() bool { return m.Size() == 0 }

// CountStab returns the number of rectangles containing (x, y):
// AugProject prefix sums over the opens and closes endpoint maps,
// stabbing each covered nested y-interval structure. O(log^2 n).
func (m Map) CountStab(x, y float64) int64 {
	neg := math.Inf(-1)
	add := func(a, b int64) int64 { return a + b }
	opened := pam.AugProject(m.opens,
		Rect{XLo: neg, XHi: neg, YLo: neg, YHi: neg},
		Rect{XLo: x, XHi: math.Inf(1), YLo: math.Inf(1), YHi: math.Inf(1)},
		func(s ySet) int64 { return s.countStab(y) },
		add, 0)
	closed := pam.AugProject(m.closes,
		Rect{XHi: neg, XLo: neg, YLo: neg, YHi: neg},
		Rect{XHi: x, XLo: neg, YLo: neg, YHi: neg},
		func(s ySet) int64 { return s.countStab(y) },
		add, 0)
	return opened - closed + m.bufDelta(x, y)
}

// bufDelta is the update buffer's correction to CountStab: +1 for each
// buffered insert containing (x, y), −1 for each containing tombstone.
// O(log b + prefix matches) for a buffer of b rectangles.
func (m Map) bufDelta(x, y float64) int64 {
	if m.buf.IsEmpty() {
		return 0
	}
	neg, pos := math.Inf(-1), math.Inf(1)
	lo := Rect{XLo: neg, XHi: neg, YLo: neg, YHi: neg}
	hi := Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos}
	var d int64
	m.buf.Adds.ForEachRange(lo, hi, func(r Rect, _ struct{}) bool {
		if r.Contains(x, y) {
			d++
		}
		return true
	})
	m.buf.Dels.ForEachRange(lo, hi, func(r Rect, _ struct{}) bool {
		if r.Contains(x, y) {
			d--
		}
		return true
	})
	return d
}

// Stabbed reports whether any rectangle contains (x, y).
func (m Map) Stabbed(x, y float64) bool { return m.CountStab(x, y) > 0 }

// ReportStab returns the rectangles containing (x, y), in
// (xLo, xHi, yLo, yHi) order: candidates opening at or before x, pruned
// by the max-right-endpoint augmentation to those whose x-extent reaches
// x, then filtered on the y-extent. O(log n + kx log(n/kx + 1)) for kx
// rectangles stabbed in x alone.
func (m Map) ReportStab(x, y float64) []Rect {
	pos := math.Inf(1)
	candidates := m.report.UpTo(Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos})
	hits := candidates.AugFilter(func(maxXHi float64) bool { return maxXHi >= x })
	var out []Rect
	hits.ForEach(func(r Rect, _ struct{}) bool {
		if r.YLo <= y && y <= r.YHi {
			out = append(out, r)
		}
		return true
	})
	if !m.buf.IsEmpty() {
		// Cancel tombstoned rectangles, then append the buffered inserts
		// stabbed by (x, y) and restore the global order (rectangles in
		// both layers are tombstoned, so none appears twice).
		kept := out[:0]
		for _, r := range out {
			if !m.buf.Dels.Contains(r) {
				kept = append(kept, r)
			}
		}
		out = kept
		neg := math.Inf(-1)
		m.buf.Adds.ForEachRange(
			Rect{XLo: neg, XHi: neg, YLo: neg, YHi: neg},
			Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos},
			func(r Rect, _ struct{}) bool {
				if r.Contains(x, y) {
					out = append(out, r)
				}
				return true
			})
		slices.SortFunc(out, cmpXLo)
	}
	return out
}

func cmpXLo(a, b Rect) int {
	switch {
	case lessXLo(a, b):
		return -1
	case lessXLo(b, a):
		return 1
	default:
		return 0
	}
}

// Rects materializes all rectangles in (xLo, xHi, yLo, yHi) order.
func (m Map) Rects() []Rect {
	keys := m.buf.ApplyKeys(m.opens.Keys())
	// ApplyKeys appends the buffered inserts after the surviving bulk
	// keys; both halves are already in (xLo, xHi, yLo, yHi) order.
	slices.SortFunc(keys, cmpXLo)
	return keys
}

// Validate checks the structural invariants of both constituent trees,
// including that every node's nested maps hold exactly the subtree's
// rectangles, plus the update-buffer invariants (for tests).
// O(n log n).
func (m Map) Validate() error {
	if err := m.buf.Validate(m.opens.Find, nil); err != nil {
		return err
	}
	sameKeys := func(a, b []Rect) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	ysEq := func(a, b ySet) bool {
		if a.byLo.Size() != b.byLo.Size() {
			return false
		}
		return sameKeys(a.byLo.Keys(), b.byLo.Keys()) && sameKeys(a.byHi.Keys(), b.byHi.Keys())
	}
	if err := m.opens.Validate(ysEq); err != nil {
		return err
	}
	if err := m.closes.Validate(ysEq); err != nil {
		return err
	}
	return m.report.Validate(func(a, b float64) bool { return a == b })
}
