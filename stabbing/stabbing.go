// Package stabbing implements rectangle stabbing queries from the
// follow-up paper "Parallel Range, Segment and Rectangle Queries with
// Augmented Maps" (Sun & Blelloch, arXiv:1803.08621, §5): maintain a set
// of closed axis-parallel rectangles and, for a query point (x, y),
// count or report the rectangles containing it.
//
// Counting composes the §5.1 interval-map idea in both dimensions. A
// rectangle [xl, xh] x [yl, yh] contains (x, y) iff its x-extent stabs x
// and its y-extent stabs y, and since no rectangle can be simultaneously
// entirely left and entirely right of x,
//
//	count(x, y) = #(xl <= x, y-extent stabs y) - #(xh < x, y-extent stabs y)
//
// Each term is a prefix sum over an endpoint-keyed augmented map — one
// keyed by left x-endpoints ("opens"), one by right ("closes") — whose
// augmented values are *nested y-interval count structures*: the
// subtree's rectangles keyed by yl and by yh, combined by persistent
// parallel union, so a nested structure answers "how many y-extents stab
// y" as a rank difference in O(log n). AugProject folds the O(log n)
// nested structures on the prefix without ever invoking the expensive
// union Combine: O(log^2 n) per count query.
//
// Reporting uses a third map with the cheap interval-tree augmentation
// alone — rectangles keyed by left x-endpoint, augmented with the
// maximum right x-endpoint: an AugFilter keeps the rectangles whose
// x-extent stabs x in output-sensitive time, and the y-extent check
// filters the survivors. (The report path deliberately avoids splitting
// the union-augmented endpoint maps: restricting those recombines nested
// maps along the split path, which is not polylogarithmic.) With kx
// rectangles stabbed in x alone, ReportStab costs
// O(log n + kx log(n/kx + 1)).
//
// Rectangles are closed on all sides and behave as a set: exact
// duplicates collapse. All maps are persistent — snapshots taken before
// a Merge remain valid — and Build and Merge run in parallel.
package stabbing

import (
	"math"
	"slices"

	"repro/internal/dynamic"
	"repro/internal/parallel"
	"repro/pam"
)

// Rect is a closed axis-parallel rectangle [XLo, XHi] x [YLo, YHi].
type Rect struct {
	XLo, XHi, YLo, YHi float64
}

// Contains reports whether the rectangle contains the point (x, y).
func (r Rect) Contains(x, y float64) bool {
	return r.XLo <= x && x <= r.XHi && r.YLo <= y && y <= r.YHi
}

// Key orders; ties break lexicographically on the remaining coordinates
// so distinct rectangles compare distinct and ±Inf sentinels bound
// exactly the prefixes the queries need.

func lessXLo(a, b Rect) bool {
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	return a.YHi < b.YHi
}

func lessXHi(a, b Rect) bool {
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	return a.YHi < b.YHi
}

func lessYLo(a, b Rect) bool {
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	if a.YHi != b.YHi {
		return a.YHi < b.YHi
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}

func lessYHi(a, b Rect) bool {
	if a.YHi != b.YHi {
		return a.YHi < b.YHi
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}

// yloKey / yhiKey order the nested count maps by (YLo, ...) and
// (YHi, ...) with no augmentation; stab counting is a rank difference.
type yloKey struct{}

func (yloKey) Less(a, b Rect) bool                 { return lessYLo(a, b) }
func (yloKey) Id() struct{}                        { return struct{}{} }
func (yloKey) Base(Rect, struct{}) struct{}        { return struct{}{} }
func (yloKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type yhiKey struct{}

func (yhiKey) Less(a, b Rect) bool                 { return lessYHi(a, b) }
func (yhiKey) Id() struct{}                        { return struct{}{} }
func (yhiKey) Base(Rect, struct{}) struct{}        { return struct{}{} }
func (yhiKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type yloMap = pam.AugMap[Rect, struct{}, struct{}, yloKey]
type yhiMap = pam.AugMap[Rect, struct{}, struct{}, yhiKey]

// ySet is the nested y-interval count structure: the subtree's
// rectangles keyed by bottom edge and by top edge.
type ySet struct {
	byLo yloMap
	byHi yhiMap
}

func (s ySet) union(o ySet) ySet {
	return ySet{byLo: s.byLo.Union(o.byLo), byHi: s.byHi.Union(o.byHi)}
}

func singletonYSet(r Rect) ySet {
	return ySet{byLo: yloMap{}.Insert(r, struct{}{}), byHi: yhiMap{}.Insert(r, struct{}{})}
}

// countStab counts rectangles whose y-extent contains y in O(log n):
// those whose bottom edge is at or below y minus those whose top edge is
// strictly below y (the two miss-sets are disjoint, so
// inclusion-exclusion is exact).
func (s ySet) countStab(y float64) int64 {
	pos, neg := math.Inf(1), math.Inf(-1)
	bottomAtOrBelow := s.byLo.Rank(Rect{YLo: y, YHi: pos, XLo: pos, XHi: pos}) // #(YLo <= y)
	topBelow := s.byHi.Rank(Rect{YHi: y, YLo: neg, XLo: neg, XHi: neg})        // #(YHi < y)
	return bottomAtOrBelow - topBelow
}

// opensEntry: rectangles keyed by left x-endpoint with the nested
// y-interval count structure.
type opensEntry struct{}

func (opensEntry) Less(a, b Rect) bool { return lessXLo(a, b) }
func (opensEntry) Id() ySet            { return ySet{} }
func (opensEntry) Base(r Rect, _ struct{}) ySet {
	return singletonYSet(r)
}
func (opensEntry) Combine(x, y ySet) ySet { return x.union(y) }

// reportEntry: rectangles keyed by left x-endpoint, augmented with the
// maximum right x-endpoint (the §5.1 interval-map augmentation) for
// output-sensitive stabbing reports.
type reportEntry struct{}

func (reportEntry) Less(a, b Rect) bool             { return lessXLo(a, b) }
func (reportEntry) Id() float64                     { return math.Inf(-1) }
func (reportEntry) Base(r Rect, _ struct{}) float64 { return r.XHi }
func (reportEntry) Combine(x, y float64) float64    { return max(x, y) }

// closesEntry: rectangles keyed by right x-endpoint with the nested
// y-interval count structure.
type closesEntry struct{}

func (closesEntry) Less(a, b Rect) bool { return lessXHi(a, b) }
func (closesEntry) Id() ySet            { return ySet{} }
func (closesEntry) Base(r Rect, _ struct{}) ySet {
	return singletonYSet(r)
}
func (closesEntry) Combine(x, y ySet) ySet { return x.union(y) }

type opensMap = pam.AugMap[Rect, struct{}, ySet, opensEntry]
type closesMap = pam.AugMap[Rect, struct{}, ySet, closesEntry]
type reportMap = pam.AugMap[Rect, struct{}, float64, reportEntry]

// static is the immutable bulk structure one ladder level holds: the
// three constituent maps, built and merged in parallel.
type static struct {
	opens  opensMap
	closes closesMap
	report reportMap
}

// build constructs the three maps over the items in parallel; the
// receiver supplies the options.
func (s static) build(items []pam.KV[Rect, struct{}]) static {
	var out static
	parallel.Do3(
		func() { out.opens = s.opens.Build(items, nil) },
		func() { out.closes = s.closes.Build(items, nil) },
		func() { out.report = s.report.Build(items, nil) },
	)
	return out
}

// union merges two static structures with parallel persistent union.
func (s static) union(o static) static {
	var out static
	parallel.Do3(
		func() { out.opens = s.opens.Union(o.opens) },
		func() { out.closes = s.closes.Union(o.closes) },
		func() { out.report = s.report.Union(o.report) },
	)
	return out
}

// bufKey orders buffered rectangles in the canonical
// (xLo, xHi, yLo, yHi) order, unaugmented.
type bufKey struct{}

func (bufKey) Less(a, b Rect) bool                 { return lessXLo(a, b) }
func (bufKey) Id() struct{}                        { return struct{}{} }
func (bufKey) Base(Rect, struct{}) struct{}        { return struct{}{} }
func (bufKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// ladder is the dynamization engine instance (see internal/dynamic).
type ladder = dynamic.Ladder[Rect, struct{}, static, bufKey]

// backend drives the generic ladder with this package's static
// structure; the opens map is the canonical key order.
var backend = &dynamic.Backend[Rect, struct{}, static]{
	Build:   func(proto static, items []pam.KV[Rect, struct{}]) static { return proto.build(items) },
	Entries: func(s static) []pam.KV[Rect, struct{}] { return s.opens.Entries() },
	Size:    func(s static) int64 { return s.opens.Size() },
	Find:    func(s static, k Rect) (struct{}, bool) { return s.opens.Find(k) },
	Less:    lessXLo,
	ValEq:   nil,
}

// Map is a persistent rectangle-stabbing structure. The zero value is
// empty and usable. As with rangetree, the union-valued augmentations
// make single-rectangle tree updates linear in the worst case, so the
// structure is dynamized by a logarithmic-method ladder
// (internal/dynamic): O(log n) immutable bulk structures — each the
// three maps above, built and merged in parallel — of geometrically
// increasing size, plus a constant-capacity write buffer. Insert and
// Delete write the buffer in O(log n) and carry it down the ladder
// with parallel rebuilds, for amortized O(polylog n) updates and
// worst-case polylog queries; Build and Merge return fully condensed
// single-level maps. All versions persist: updates return new handles
// and old handles keep answering from exactly the contents they had.
type Map struct {
	lad ladder
}

// New returns an empty rectangle map with the given options.
func New(opts pam.Options) Map {
	return Map{lad: dynamic.New[Rect, struct{}, static, bufKey](static{
		opens:  pam.NewAugMap[Rect, struct{}, ySet, opensEntry](opts),
		closes: pam.NewAugMap[Rect, struct{}, ySet, closesEntry](opts),
		report: pam.NewAugMap[Rect, struct{}, float64, reportEntry](opts),
	})}
}

// Build returns a map (with m's options) over the given rectangles
// (duplicates collapse). O(n log^2 n) work, polylogarithmic span; the
// three constituent maps build in parallel.
func (m Map) Build(rects []Rect) Map {
	items := make([]pam.KV[Rect, struct{}], len(rects))
	for i, r := range rects {
		items[i] = pam.KV[Rect, struct{}]{Key: r}
	}
	return Map{lad: m.lad.WithStatic(backend, m.lad.Proto().build(items))}
}

// Insert returns a map with the rectangle added (a duplicate is a
// no-op). Amortized O(polylog n): the rectangle lands in the ladder's
// write buffer, which carries down the geometric levels with parallel
// rebuilds.
func (m Map) Insert(r Rect) Map {
	return Map{lad: m.lad.Insert(backend, r, struct{}{}, nil)}
}

// Delete returns a map without the rectangle; deleting an absent
// rectangle is a no-op. Amortized O(polylog n).
func (m Map) Delete(r Rect) Map {
	return Map{lad: m.lad.Delete(backend, r)}
}

// Pending returns the number of updates in the ladder's write buffer,
// bounded by the write-buffer capacity (dynamic.BufCap by default;
// 0 after Build or Merge).
func (m Map) Pending() int64 { return m.lad.Pending() }

// LevelRecordCounts reports the record count of each ladder level
// (diagnostics for the geometric-growth tests).
func (m Map) LevelRecordCounts() []int64 { return m.lad.LevelRecordCounts() }

// PendingCarries reports the ladder's spilled overflow runs not yet
// carried into the levels (always 0 here: stabbing has no deferred
// write path yet, but queries already answer exactly over {buffer +
// overflow runs + levels}, so a future carrier needs no query changes).
func (m Map) PendingCarries() int { return m.lad.OverflowRuns() }

// Contains reports whether the rectangle is present.
func (m Map) Contains(r Rect) bool { return m.lad.Contains(backend, r) }

// Merge returns the union of two rectangle maps (parallel, persistent),
// condensing both sides' ladders first; the result is fully condensed.
func (m Map) Merge(other Map) Map {
	a, b := m.lad.Condense(backend), other.lad.Condense(backend)
	return Map{lad: m.lad.WithStatic(backend, a.union(b))}
}

// Size returns the number of distinct rectangles.
func (m Map) Size() int64 { return m.lad.Size() }

// IsEmpty reports whether the map is empty.
func (m Map) IsEmpty() bool { return m.Size() == 0 }

// countStabIn counts the rectangles of one static structure containing
// (x, y): AugProjectKV prefix sums over the opens and closes endpoint
// maps, stabbing each covered nested y-interval structure and counting
// boundary rectangles directly (allocation free — a singleton nested
// structure contributes 1 exactly when its rectangle's y-extent stabs
// y).
func countStabIn(s static, x, y float64) int64 {
	neg := math.Inf(-1)
	countOne := func(r Rect, _ struct{}) int64 {
		if r.YLo <= y && y <= r.YHi {
			return 1
		}
		return 0
	}
	add := func(a, b int64) int64 { return a + b }
	opened := pam.AugProjectKV(s.opens,
		Rect{XLo: neg, XHi: neg, YLo: neg, YHi: neg},
		Rect{XLo: x, XHi: math.Inf(1), YLo: math.Inf(1), YHi: math.Inf(1)},
		countOne,
		func(ys ySet) int64 { return ys.countStab(y) },
		add, 0)
	closed := pam.AugProjectKV(s.closes,
		Rect{XHi: neg, XLo: neg, YLo: neg, YHi: neg},
		Rect{XHi: x, XLo: neg, YLo: neg, YHi: neg},
		countOne,
		func(ys ySet) int64 { return ys.countStab(y) },
		add, 0)
	return opened - closed
}

// CountStab returns the number of rectangles containing (x, y), summing
// the signed contributions of every ladder level plus the write
// buffer's correction. Worst-case O(log^3 n).
func (m Map) CountStab(x, y float64) int64 {
	var count int64
	m.lad.EachSide(func(sign int64, s static) { count += sign * countStabIn(s, x, y) })
	return count + m.bufDelta(x, y)
}

// bufDelta is the write buffer's correction to CountStab: +1 for each
// buffered insert containing (x, y), −1 for each containing tombstone.
// O(dynamic.BufCap) = O(1) records scanned.
func (m Map) bufDelta(x, y float64) int64 {
	buf := m.lad.Buf()
	if buf.IsEmpty() {
		return 0
	}
	neg, pos := math.Inf(-1), math.Inf(1)
	lo := Rect{XLo: neg, XHi: neg, YLo: neg, YHi: neg}
	hi := Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos}
	var d int64
	buf.Adds.ForEachRange(lo, hi, func(r Rect, _ struct{}) bool {
		if r.Contains(x, y) {
			d++
		}
		return true
	})
	buf.Dels.ForEachRange(lo, hi, func(r Rect, _ struct{}) bool {
		if r.Contains(x, y) {
			d--
		}
		return true
	})
	return d
}

// Stabbed reports whether any rectangle contains (x, y).
func (m Map) Stabbed(x, y float64) bool { return m.CountStab(x, y) > 0 }

// ReportStab returns the rectangles containing (x, y), in
// (xLo, xHi, yLo, yHi) order. Per level: candidates opening at or
// before x, pruned by the max-right-endpoint augmentation to those
// whose x-extent reaches x, then filtered on the y-extent —
// O(log n + kx log(n/kx + 1)) for kx rectangles stabbed in x alone. A
// tombstoned rectangle appears once live and once as a tombstone, so
// per-rectangle signed aggregation leaves exactly the live matches.
func (m Map) ReportStab(x, y float64) []Rect {
	pos := math.Inf(1)
	// Fully condensed map (fresh from Build or Merge): one pure level,
	// nothing to cancel — append matches directly, no aggregation map.
	if s, ok := m.lad.Single(); ok {
		candidates := s.report.UpTo(Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos})
		hits := candidates.AugFilter(func(maxXHi float64) bool { return maxXHi >= x })
		var out []Rect
		hits.ForEach(func(r Rect, _ struct{}) bool {
			if r.YLo <= y && y <= r.YHi {
				out = append(out, r)
			}
			return true
		})
		return out
	}
	counts := make(map[Rect]int64)
	m.lad.EachSide(func(sign int64, s static) {
		candidates := s.report.UpTo(Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos})
		hits := candidates.AugFilter(func(maxXHi float64) bool { return maxXHi >= x })
		hits.ForEach(func(r Rect, _ struct{}) bool {
			if r.YLo <= y && y <= r.YHi {
				counts[r] += sign
			}
			return true
		})
	})
	buf := m.lad.Buf()
	if !buf.IsEmpty() {
		neg := math.Inf(-1)
		lo := Rect{XLo: neg, XHi: neg, YLo: neg, YHi: neg}
		hi := Rect{XLo: x, XHi: pos, YLo: pos, YHi: pos}
		buf.Adds.ForEachRange(lo, hi, func(r Rect, _ struct{}) bool {
			if r.Contains(x, y) {
				counts[r]++
			}
			return true
		})
		buf.Dels.ForEachRange(lo, hi, func(r Rect, _ struct{}) bool {
			if r.Contains(x, y) {
				counts[r]--
			}
			return true
		})
	}
	out := make([]Rect, 0, len(counts))
	for r, c := range counts {
		if c > 0 {
			out = append(out, r)
		}
	}
	slices.SortFunc(out, cmpXLo)
	return out
}

func cmpXLo(a, b Rect) int {
	switch {
	case lessXLo(a, b):
		return -1
	case lessXLo(b, a):
		return 1
	default:
		return 0
	}
}

// Rects materializes all rectangles in (xLo, xHi, yLo, yHi) order.
func (m Map) Rects() []Rect {
	entries := m.lad.Entries(backend)
	out := make([]Rect, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}

// Validate checks the ladder invariants (carry propagation, buffer
// contract, level capacities) and the structural invariants of every
// level's three constituent trees, including that every node's nested
// maps hold exactly the subtree's rectangles (for tests). O(n log n).
func (m Map) Validate() error {
	if err := m.lad.Validate(backend); err != nil {
		return err
	}
	sameKeys := func(a, b []Rect) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	ysEq := func(a, b ySet) bool {
		if a.byLo.Size() != b.byLo.Size() {
			return false
		}
		return sameKeys(a.byLo.Keys(), b.byLo.Keys()) && sameKeys(a.byHi.Keys(), b.byHi.Keys())
	}
	var err error
	m.lad.EachSide(func(_ int64, s static) {
		if err != nil {
			return
		}
		err = s.opens.Validate(ysEq)
		if err == nil {
			err = s.closes.Validate(ysEq)
		}
		if err == nil {
			err = s.report.Validate(func(a, b float64) bool { return a == b })
		}
	})
	return err
}
