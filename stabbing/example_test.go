package stabbing_test

import (
	"fmt"

	"repro/pam"
	"repro/stabbing"
)

// CountStab answers "how many rectangles contain the point (x, y)" in
// O(log^2 n) by composing the interval-map idea in both dimensions;
// ReportStab lists them output-sensitively.
func ExampleMap_CountStab() {
	m := stabbing.New(pam.Options{}).Build([]stabbing.Rect{
		{XLo: 0, XHi: 4, YLo: 0, YHi: 4},
		{XLo: 2, XHi: 6, YLo: 2, YHi: 6},
		{XLo: 5, XHi: 9, YLo: 0, YHi: 1},
	})

	fmt.Println(m.CountStab(3, 3))
	fmt.Println(m.Stabbed(8, 0.5))
	fmt.Println(m.ReportStab(2, 2))
	// Output:
	// 2
	// true
	// [{0 4 0 4} {2 6 2 6}]
}

// Insert and Delete are persistent amortized-polylog updates: each
// returns a new map, and old handles — like the snapshot taken before
// the updates — keep answering from exactly the contents they had.
func ExampleMap_Insert() {
	m := stabbing.New(pam.Options{}).Build([]stabbing.Rect{
		{XLo: 0, XHi: 4, YLo: 0, YHi: 4},
		{XLo: 2, XHi: 6, YLo: 2, YHi: 6},
	})

	snapshot := m
	m = m.Insert(stabbing.Rect{XLo: 1, XHi: 3, YLo: 1, YHi: 3})
	m = m.Delete(stabbing.Rect{XLo: 0, XHi: 4, YLo: 0, YHi: 4})

	fmt.Println(m.CountStab(3, 3), m.Size())
	fmt.Println(snapshot.CountStab(3, 3), snapshot.Size())
	// Output:
	// 2 2
	// 2 2
}
