package stabbing

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/baseline/naiverect"
	"repro/internal/parallel"
	"repro/pam"
)

func cmpRect(a, b Rect) int {
	for _, p := range [][2]float64{{a.XLo, b.XLo}, {a.XHi, b.XHi}, {a.YLo, b.YLo}, {a.YHi, b.YHi}} {
		if p[0] < p[1] {
			return -1
		}
		if p[0] > p[1] {
			return 1
		}
	}
	return 0
}

// randRects draws coordinates from a small integer universe so touching
// edges, shared corners, and exact duplicates all occur.
func randRects(rng *rand.Rand, n int, universe int) []Rect {
	out := make([]Rect, n)
	for i := range out {
		xlo := float64(rng.Intn(universe))
		ylo := float64(rng.Intn(universe))
		out[i] = Rect{
			XLo: xlo, XHi: xlo + float64(rng.Intn(universe/3)),
			YLo: ylo, YHi: ylo + float64(rng.Intn(universe/3)),
		}
	}
	return out
}

func toNaive(rects []Rect) []naiverect.Rect {
	out := make([]naiverect.Rect, len(rects))
	for i, r := range rects {
		out[i] = naiverect.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
	}
	return out
}

func fromNaive(rects []naiverect.Rect) []Rect {
	out := make([]Rect, len(rects))
	for i, r := range rects {
		out[i] = Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
	}
	return out
}

func queryCoord(rng *rand.Rand, universe int) float64 {
	c := float64(rng.Intn(universe + 2))
	if rng.Intn(2) == 0 {
		c += 0.5
	}
	return c
}

func TestCountStabMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const universe = 24
	for _, n := range []int{0, 1, 7, 300} {
		rects := randRects(rng, n, universe)
		m := New(pam.Options{}).Build(rects)
		naive := naiverect.Build(toNaive(rects))
		if m.Size() != int64(naive.Size()) {
			t.Fatalf("n=%d: Size = %d, naive %d", n, m.Size(), naive.Size())
		}
		for q := 0; q < 600; q++ {
			x, y := queryCoord(rng, universe), queryCoord(rng, universe)
			want := int64(naive.CountStab(x, y))
			if got := m.CountStab(x, y); got != want {
				t.Fatalf("n=%d CountStab(%v,%v) = %d, naive %d", n, x, y, got, want)
			}
			if got := m.Stabbed(x, y); got != (want > 0) {
				t.Fatalf("n=%d Stabbed(%v,%v) = %v, want %v", n, x, y, got, want > 0)
			}
		}
	}
}

func TestReportStabMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const universe = 24
	rects := randRects(rng, 250, universe)
	m := New(pam.Options{}).Build(rects)
	naive := naiverect.Build(toNaive(rects))
	for q := 0; q < 400; q++ {
		x, y := queryCoord(rng, universe), queryCoord(rng, universe)
		got := m.ReportStab(x, y)
		want := fromNaive(naive.ReportStab(x, y))
		slices.SortFunc(got, cmpRect)
		slices.SortFunc(want, cmpRect)
		if !slices.Equal(got, want) {
			t.Fatalf("ReportStab(%v,%v) = %v, naive %v", x, y, got, want)
		}
		if int64(len(got)) != m.CountStab(x, y) {
			t.Fatalf("report length %d disagrees with CountStab %d", len(got), m.CountStab(x, y))
		}
	}
}

func TestMergeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randRects(rng, 150, 24)
	b := randRects(rng, 150, 24)
	merged := New(pam.Options{}).Build(a).Merge(New(pam.Options{}).Build(b))
	rebuilt := New(pam.Options{}).Build(append(append([]Rect{}, a...), b...))
	if merged.Size() != rebuilt.Size() {
		t.Fatalf("merged size %d != rebuilt size %d", merged.Size(), rebuilt.Size())
	}
	if !slices.Equal(merged.Rects(), rebuilt.Rects()) {
		t.Fatal("merged rectangles differ from rebuilt")
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged map invalid: %v", err)
	}
	for q := 0; q < 100; q++ {
		x, y := queryCoord(rng, 24), queryCoord(rng, 24)
		if merged.CountStab(x, y) != rebuilt.CountStab(x, y) {
			t.Fatalf("merged and rebuilt disagree at (%v,%v)", x, y)
		}
	}
}

func TestPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := randRects(rng, 200, 24)
	m1 := New(pam.Options{}).Build(base)
	naive1 := naiverect.Build(toNaive(base))

	type query struct{ x, y float64 }
	queries := make([]query, 50)
	before := make([]int64, len(queries))
	for i := range queries {
		queries[i] = query{queryCoord(rng, 24), queryCoord(rng, 24)}
		before[i] = m1.CountStab(queries[i].x, queries[i].y)
	}
	m2 := m1.Merge(New(pam.Options{}).Build(randRects(rng, 200, 24)))
	for i, q := range queries {
		if got := m1.CountStab(q.x, q.y); got != before[i] {
			t.Fatalf("snapshot changed after Merge: query %d was %d, now %d", i, before[i], got)
		}
		if got := m1.CountStab(q.x, q.y); got != int64(naive1.CountStab(q.x, q.y)) {
			t.Fatal("snapshot no longer matches its own naive set")
		}
	}
	if m2.Size() < m1.Size() {
		t.Fatal("merge lost rectangles")
	}
	if err := m1.Validate(); err != nil {
		t.Fatalf("snapshot invalid after merge: %v", err)
	}
}

func TestValidateAndZeroValue(t *testing.T) {
	var m Map // zero value must be usable
	if !m.IsEmpty() || m.Size() != 0 {
		t.Fatal("zero-value map should be empty")
	}
	if got := m.CountStab(1, 1); got != 0 {
		t.Fatalf("empty CountStab = %d", got)
	}
	if got := m.ReportStab(1, 1); len(got) != 0 {
		t.Fatalf("empty ReportStab = %v", got)
	}
	rng := rand.New(rand.NewSource(5))
	m = m.Build(randRects(rng, 500, 24))
	if err := m.Validate(); err != nil {
		t.Fatalf("built map invalid: %v", err)
	}
}

func TestSchemesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rects := randRects(rng, 200, 24)
	ref := New(pam.Options{}).Build(rects)
	for _, sch := range []pam.Scheme{pam.AVL, pam.RedBlack, pam.Treap} {
		m := New(pam.Options{Scheme: sch}).Build(rects)
		if err := m.Validate(); err != nil {
			t.Fatalf("scheme %v: invalid: %v", sch, err)
		}
		for q := 0; q < 100; q++ {
			x, y := queryCoord(rng, 24), queryCoord(rng, 24)
			if m.CountStab(x, y) != ref.CountStab(x, y) {
				t.Fatalf("scheme %v disagrees with weight-balanced at (%v,%v)", sch, x, y)
			}
		}
	}
}

// withSequential forces parallelism 1 so allocation counts are exact and
// deterministic (the complexity tests below count allocations the way
// internal/core/complexity_test.go counts comparisons).
func withSequential(t *testing.T, f func()) {
	t.Helper()
	old := parallel.Parallelism()
	parallel.SetParallelism(1)
	defer parallel.SetParallelism(old)
	f()
}

// disjointRects builds n pairwise x-disjoint unit squares climbing in y,
// so any point is contained in at most one.
func disjointRects(n int) []Rect {
	out := make([]Rect, n)
	for i := range out {
		out[i] = Rect{
			XLo: float64(2 * i), XHi: float64(2*i + 1),
			YLo: float64(i), YHi: float64(i + 1),
		}
	}
	return out
}

// TestReportComplexity verifies output-sensitivity the way
// internal/core/complexity_test.go verifies work bounds, with heap
// allocations standing in for comparisons: stabbing k of n rectangles
// must cost polylog(n) + O(k·log), far below the Θ(n) a scan pays.
func TestReportComplexity(t *testing.T) {
	withSequential(t, func() {
		const small, large = 1 << 13, 1 << 17
		allocsAt := func(n int) float64 {
			m := New(pam.Options{}).Build(disjointRects(n))
			x, y := float64(n), float64(n)/2
			return testing.AllocsPerRun(10, func() {
				if len(m.ReportStab(x, y)) > 1 {
					t.Fatal("disjoint rects: at most one hit expected")
				}
			})
		}
		aSmall, aLarge := allocsAt(small), allocsAt(large)
		if aLarge > float64(large)/64 {
			t.Fatalf("report on n=%d did %v allocations — near-linear work", large, aLarge)
		}
		if aLarge > 4*aSmall+64 {
			t.Fatalf("report cost not output-sensitive: n 16x => allocs %v -> %v", aSmall, aLarge)
		}
	})
}

// TestCountComplexity: the O(log^2 n) count query, same methodology.
func TestCountComplexity(t *testing.T) {
	withSequential(t, func() {
		const small, large = 1 << 13, 1 << 17
		allocsAt := func(n int) float64 {
			m := New(pam.Options{}).Build(disjointRects(n))
			x, y := float64(n), float64(n)/2
			return testing.AllocsPerRun(10, func() {
				m.CountStab(x, y)
			})
		}
		aSmall, aLarge := allocsAt(small), allocsAt(large)
		if aLarge > float64(large)/64 {
			t.Fatalf("count on n=%d did %v allocations — near-linear work", large, aLarge)
		}
		if aLarge > 4*aSmall+64 {
			t.Fatalf("count cost not polylogarithmic: n 16x => allocs %v -> %v", aSmall, aLarge)
		}
	})
}

// TestReportScalesWithOutput: at fixed n, reporting k results costs
// roughly proportional to k, not n. ReportStab's bound is stated in kx
// (rectangles stabbed in x alone), so the two query sites are built to
// have kx = 16 and kx = kBig respectively.
func TestReportScalesWithOutput(t *testing.T) {
	withSequential(t, func() {
		const n = 1 << 15
		const kBig = 1 << 10
		rects := disjointRects(n)
		for i := 0; i < 16; i++ {
			rects = append(rects, Rect{XLo: -20, XHi: -5, YLo: float64(-i), YHi: float64(i)})
		}
		for i := 0; i < kBig; i++ {
			rects = append(rects, Rect{XLo: -50, XHi: -35, YLo: float64(-i), YHi: float64(i)})
		}
		m := New(pam.Options{}).Build(rects)
		allocsFor := func(x float64, k int) float64 {
			return testing.AllocsPerRun(10, func() {
				got := m.ReportStab(x, 0)
				if len(got) != k {
					t.Fatalf("expected %d results at x=%v, got %d", k, x, len(got))
				}
			})
		}
		aSmall := allocsFor(-10, 16) // the [-20,-5] cluster only
		aBig := allocsFor(-40, kBig) // the [-50,-35] cluster only
		// Blocked leaves compress the gap: allocations scale with the
		// number of ~B-entry blocks touched (k/B + log n), so the 64x
		// output ratio shows up as a smaller — but still clear —
		// allocation ratio.
		if aSmall*4 > aBig {
			t.Fatalf("kx=16 report (%v allocs) not far cheaper than kx=%d report (%v allocs)", aSmall, kBig, aBig)
		}
		if aBig > float64(n)/4 {
			t.Fatalf("kx=%d report did %v allocations on n=%d — near-linear", kBig, aBig, n+kBig+16)
		}
	})
}

func FuzzRectQueries(f *testing.F) {
	f.Add([]byte{0, 4, 1, 2, 3, 2, 8, 1}, byte(3), byte(2))
	f.Add([]byte{1, 1, 1, 1}, byte(1), byte(1))
	f.Add([]byte{}, byte(0), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, qx, qy byte) {
		var rects []Rect
		for i := 0; i+3 < len(data) && len(rects) < 64; i += 4 {
			xlo := float64(data[i] % 16)
			ylo := float64(data[i+2] % 16)
			rects = append(rects, Rect{
				XLo: xlo, XHi: xlo + float64(data[i+1]%8),
				YLo: ylo, YHi: ylo + float64(data[i+3]%8),
			})
		}
		m := New(pam.Options{}).Build(rects)
		naive := naiverect.Build(toNaive(rects))
		x, y := float64(qx%24), float64(qy%24)
		if got, want := m.CountStab(x, y), int64(naive.CountStab(x, y)); got != want {
			t.Fatalf("CountStab(%v,%v) = %d, naive %d (rects %v)", x, y, got, want, rects)
		}
		got := m.ReportStab(x, y)
		want := fromNaive(naive.ReportStab(x, y))
		slices.SortFunc(got, cmpRect)
		slices.SortFunc(want, cmpRect)
		if !slices.Equal(got, want) {
			t.Fatalf("ReportStab mismatch: %v vs naive %v (rects %v)", got, want, rects)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid map: %v (rects %v)", err, rects)
		}
	})
}
