package invindex_test

import (
	"fmt"

	"repro/invindex"
)

// An inverted index maps words to posting maps (document -> weight,
// augmented by max weight); TopK extracts the best documents in
// O(k log n) through the augmentation.
func ExampleBuild() {
	ix := invindex.Build([]invindex.Triple{
		{Word: "parallel", Doc: 1, W: 2},
		{Word: "maps", Doc: 1, W: 1},
		{Word: "parallel", Doc: 2, W: 1},
		{Word: "trees", Doc: 2, W: 3},
	})

	for _, dw := range invindex.TopK(ix.QueryAnd("parallel"), 2) {
		fmt.Println(dw.Doc, dw.W)
	}
	fmt.Println(ix.QueryAnd("parallel", "trees").Size())
	// Output:
	// 1 2
	// 2 1
	// 1
}
