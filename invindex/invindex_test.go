package invindex

import (
	"math/rand"
	"slices"
	"sort"
	"sync"
	"testing"
)

var corpus = []Triple{
	{"go", 1, 2}, {"maps", 1, 1}, {"parallel", 1, 3},
	{"go", 2, 1}, {"trees", 2, 2},
	{"parallel", 3, 5}, {"trees", 3, 1}, {"maps", 3, 2},
	{"go", 4, 4}, {"parallel", 4, 1}, {"maps", 4, 1},
}

func TestBuildAndLookup(t *testing.T) {
	ix := Build(corpus)
	if ix.Words() != 4 {
		t.Fatalf("words %d want 4", ix.Words())
	}
	p := ix.Posting("go")
	if p.Size() != 3 {
		t.Fatalf("posting size %d", p.Size())
	}
	if w, ok := p.Find(4); !ok || w != 4 {
		t.Fatalf("weight of doc 4: %v %v", w, ok)
	}
	if !ix.Posting("nonexistent").IsEmpty() {
		t.Fatal("absent word returned entries")
	}
}

func TestDuplicateOccurrencesCombine(t *testing.T) {
	ix := Build([]Triple{
		{"w", 1, 1}, {"w", 1, 2}, {"w", 1, 4},
	})
	if w, _ := ix.Posting("w").Find(1); w != 7 {
		t.Fatalf("combined weight %v want 7", w)
	}
}

func TestAndOrQueries(t *testing.T) {
	ix := Build(corpus)
	and := ix.QueryAnd("go", "parallel")
	// docs with both: 1 and 4.
	if and.Size() != 2 {
		t.Fatalf("and size %d", and.Size())
	}
	if w, ok := and.Find(1); !ok || w != 5 { // 2+3
		t.Fatalf("and weight doc1 %v %v", w, ok)
	}
	or := ix.QueryOr("go", "trees")
	// docs with either: 1,2,3,4.
	if or.Size() != 4 {
		t.Fatalf("or size %d", or.Size())
	}
	if w, _ := or.Find(2); w != 3 { // 1+2
		t.Fatalf("or weight doc2 %v", w)
	}
	diff := AndNot(ix.Posting("parallel"), ix.Posting("go"))
	// parallel docs 1,3,4 minus go docs 1,2,4 = {3}.
	if diff.Size() != 1 || !diff.Contains(3) {
		t.Fatalf("andnot wrong: size %d", diff.Size())
	}
	// Empty word lists.
	if !And().IsEmpty() || !Or().IsEmpty() {
		t.Fatal("empty queries not empty")
	}
}

func TestTopKOrderAndContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	triples := make([]Triple, n)
	for i := range triples {
		triples[i] = Triple{Word: "x", Doc: DocID(i), W: Weight(rng.Float64() * 1000)}
	}
	ix := Build(triples)
	p := ix.Posting("x")
	for _, k := range []int{0, 1, 10, 100, n, n + 5} {
		top := TopK(p, k)
		wantLen := min(k, n)
		if len(top) != wantLen {
			t.Fatalf("TopK(%d) returned %d", k, len(top))
		}
		// Nonincreasing weights.
		for i := 1; i < len(top); i++ {
			if top[i].W > top[i-1].W {
				t.Fatalf("TopK not sorted at %d", i)
			}
		}
		if len(top) == 0 {
			continue
		}
		// Matches a full sort.
		ws := make([]float64, n)
		for i, tr := range triples {
			ws[i] = float64(tr.W)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
		for i := range top {
			if float64(top[i].W) != ws[i] {
				t.Fatalf("TopK(%d)[%d] weight %v want %v", k, i, top[i].W, ws[i])
			}
		}
	}
}

func TestTopKAfterAnd(t *testing.T) {
	// Table 6's query shape: intersect posting lists, then top-10.
	rng := rand.New(rand.NewSource(8))
	var triples []Triple
	for d := 0; d < 2000; d++ {
		if d%2 == 0 {
			triples = append(triples, Triple{"alpha", DocID(d), Weight(rng.Float64())})
		}
		if d%3 == 0 {
			triples = append(triples, Triple{"beta", DocID(d), Weight(rng.Float64())})
		}
	}
	ix := Build(triples)
	and := ix.QueryAnd("alpha", "beta")
	if and.Size() != 2000/6+1 { // multiples of 6 in [0,2000)
		t.Fatalf("and size %d", and.Size())
	}
	top := TopK(and, 10)
	if len(top) != 10 {
		t.Fatalf("top10 len %d", len(top))
	}
	// Every returned doc is a multiple of 6 and weights nonincreasing.
	for i, dw := range top {
		if dw.Doc%6 != 0 {
			t.Fatalf("doc %d not in intersection", dw.Doc)
		}
		if i > 0 && top[i-1].W < dw.W {
			t.Fatal("not sorted")
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The paper's Table 6 runs 100k concurrent and/top-k queries against
	// a shared index; validate correctness under concurrency (-race).
	rng := rand.New(rand.NewSource(9))
	var triples []Triple
	words := []string{"a", "b", "c", "d", "e"}
	for d := 0; d < 3000; d++ {
		for _, w := range words {
			if rng.Intn(3) == 0 {
				triples = append(triples, Triple{w, DocID(d), Weight(rng.Float64())})
			}
		}
	}
	ix := Build(triples)
	want := ix.QueryAnd("a", "b").Size()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := ix.QueryAnd("a", "b")
				if got.Size() != want {
					errs <- "intersection size changed across concurrent queries"
					return
				}
				top := TopK(got, 5)
				if len(top) > 5 {
					errs <- "topk overflow"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := Build(nil)
	if ix.Words() != 0 {
		t.Fatal("empty build has words")
	}
	if !ix.QueryAnd("x", "y").IsEmpty() {
		t.Fatal("query on empty index returned docs")
	}
	if len(TopK(ix.Posting("x"), 10)) != 0 {
		t.Fatal("topk on empty posting")
	}
}

func TestBuildInputNotModified(t *testing.T) {
	in := []Triple{{"z", 2, 1}, {"a", 1, 1}}
	Build(in)
	if in[0].Word != "z" || in[1].Word != "a" {
		t.Fatalf("Build reordered input: %v", in)
	}
}

func TestOrEqualsManualUnion(t *testing.T) {
	ix := Build(corpus)
	got := ix.QueryOr("go", "maps", "trees")
	manual := Or(ix.Posting("go"), ix.Posting("maps"), ix.Posting("trees"))
	if got.Size() != manual.Size() {
		t.Fatal("QueryOr != Or")
	}
	ge, me := got.Entries(), manual.Entries()
	if !slices.Equal(ge, me) {
		t.Fatal("entries differ")
	}
}
