// Package invindex implements a weighted inverted index with ranked
// and/or queries (§5.3 of the PAM paper), the kind used by search
// engines.
//
// The index maps each word to a *posting map* from document id to
// weight, augmented by the maximum weight:
//
//	M_I = AM(D, <_D, W, W, v, max, 0)
//	M_O = M(T, <_T, M_I)
//
// Conjunction (and) and disjunction (or) over words are posting-map
// Intersect and Union with weight combination, running in parallel in
// O(m log(n/m + 1)) work — often far below the output size. The
// max-weight augmentation then extracts the k best documents without
// scanning the result (AugTopK), so "query and return the top 10" never
// materializes more than it needs.
//
// All query-side structures are persistent, so any number of concurrent
// searches can share the index while computing their own intermediate
// posting maps (this is the paper's concurrent-query experiment,
// Table 6).
package invindex

import (
	"repro/internal/parallel"
	"repro/internal/seq"
	"repro/pam"
)

// DocID identifies a document.
type DocID uint32

// Weight scores a word within a document.
type Weight float64

// Posting is a posting map: document -> weight, augmented by max weight.
type Posting = pam.AugMap[DocID, Weight, Weight, pam.MaxEntry[DocID, Weight]]

// Triple is one (word, document, weight) occurrence, the build input.
type Triple struct {
	Word string
	Doc  DocID
	W    Weight
}

// DocWeight is a scored document, the query output.
type DocWeight struct {
	Doc DocID
	W   Weight
}

// Index is a persistent weighted inverted index.
type Index struct {
	m pam.Map[string, Posting]
}

// AddWeights is the weight combiner used for duplicate occurrences and
// disjunctions; conjunctions use it too, matching weights being additive
// relevance scores.
func AddWeights(a, b Weight) Weight { return a + b }

// Build constructs an index from occurrence triples: parallel sort by
// (word, doc), combine duplicate (word, doc) weights, build one posting
// map per word, and assemble the word map — O(n log n) work end to end,
// all phases parallel. The input slice is not modified.
func Build(triples []Triple) Index {
	if len(triples) == 0 {
		return Index{m: pam.NewMap[string, Posting](pam.Options{})}
	}
	s := make([]Triple, len(triples))
	copy(s, triples)
	seq.SortStable(s, func(a, b Triple) bool {
		if a.Word != b.Word {
			return a.Word < b.Word
		}
		return a.Doc < b.Doc
	})
	// Combine duplicate (word, doc) occurrences by adding weights.
	s = seq.DedupSortedBy(s,
		func(a, b Triple) bool { return a.Word == b.Word && a.Doc == b.Doc },
		func(acc, next Triple) Triple { acc.W += next.W; return acc })
	// Locate word-run boundaries and build one posting map per word, in
	// parallel across words.
	starts := seq.PackIndex(len(s),
		func(i int) bool { return i == 0 || s[i-1].Word != s[i].Word },
		func(i int) int { return i })
	words := make([]pam.KV[string, Posting], len(starts))
	parallel.For(len(starts), 1, func(w int) {
		lo := starts[w]
		hi := len(s)
		if w+1 < len(starts) {
			hi = starts[w+1]
		}
		docs := make([]pam.KV[DocID, Weight], hi-lo)
		for i := lo; i < hi; i++ {
			docs[i-lo] = pam.KV[DocID, Weight]{Key: s[i].Doc, Val: s[i].W}
		}
		words[w] = pam.KV[string, Posting]{
			Key: s[lo].Word,
			Val: Posting{}.BuildSorted(docs),
		}
	})
	return Index{m: pam.NewMap[string, Posting](pam.Options{}).BuildSorted(words)}
}

// Words returns the number of distinct words.
func (ix Index) Words() int64 { return ix.m.Size() }

// Posting returns the posting map of word (the empty posting if absent).
func (ix Index) Posting(word string) Posting {
	p, _ := ix.m.Find(word)
	return p
}

// And intersects posting maps, adding weights: documents containing all
// the requested words. For three or more words the reduction is a
// balanced binary tree evaluated in parallel, so a q-word conjunction
// has O(log q) combining depth rather than a left-to-right chain.
func And(ps ...Posting) Posting {
	return reduce(ps, func(a, b Posting) Posting { return a.IntersectWith(b, AddWeights) })
}

// Or unions posting maps, adding weights: documents containing any of
// the requested words. Balanced parallel reduction, like And.
func Or(ps ...Posting) Posting {
	return reduce(ps, func(a, b Posting) Posting { return a.UnionWith(b, AddWeights) })
}

func reduce(ps []Posting, combine func(a, b Posting) Posting) Posting {
	switch len(ps) {
	case 0:
		return Posting{}
	case 1:
		return ps[0]
	case 2:
		return combine(ps[0], ps[1])
	}
	mid := len(ps) / 2
	var l, r Posting
	parallel.Do(
		func() { l = reduce(ps[:mid], combine) },
		func() { r = reduce(ps[mid:], combine) },
	)
	return combine(l, r)
}

// AndNot removes from p the documents present in q.
func AndNot(p, q Posting) Posting { return p.Difference(q) }

// QueryAnd returns the documents containing every word, scored.
func (ix Index) QueryAnd(words ...string) Posting {
	ps := make([]Posting, len(words))
	for i, w := range words {
		ps[i] = ix.Posting(w)
	}
	return And(ps...)
}

// QueryOr returns the documents containing any word, scored.
func (ix Index) QueryOr(words ...string) Posting {
	ps := make([]Posting, len(words))
	for i, w := range words {
		ps[i] = ix.Posting(w)
	}
	return Or(ps...)
}

// TopK returns the k highest-weighted documents of a posting map in
// nonincreasing weight order, in O(k log n) time via the max-weight
// augmentation.
func TopK(p Posting, k int) []DocWeight {
	top := pam.AugTopK(p, k, func(a, b Weight) bool { return a < b })
	out := make([]DocWeight, len(top))
	for i, e := range top {
		out[i] = DocWeight{Doc: e.Key, W: e.Val}
	}
	return out
}
