package repro

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/interval"
	"repro/overlap"
	"repro/pam"
	"repro/segcount"
	"repro/stabbing"
)

// Cross-structure boundary-semantics tests. interval, overlap, segcount
// and stabbing all treat their geometry as closed on every side, and a
// 1D interval [lo, hi] embeds into each of them: directly, as a
// degenerate horizontal segment at y = 0, and as a degenerate rectangle
// with y-extent [0, 0]. All four must therefore agree exactly on
// stabbing counts — including at touching endpoints, single-point
// intervals, and on empty structures — so a caller can move between the
// packages without re-learning open/closed conventions.

// quad bundles the four structures built from one interval set.
type quad struct {
	iv interval.Map
	ov overlap.Set
	sc segcount.Map
	st stabbing.Map
}

func buildQuad(ivs []interval.Interval) quad {
	segs := make([]segcount.Segment, len(ivs))
	rects := make([]stabbing.Rect, len(ivs))
	for i, v := range ivs {
		segs[i] = segcount.Segment{XLo: v.Lo, XHi: v.Hi, Y: 0}
		rects[i] = stabbing.Rect{XLo: v.Lo, XHi: v.Hi, YLo: 0, YHi: 0}
	}
	return quad{
		iv: interval.New(pam.Options{}).Build(ivs),
		ov: overlap.New(pam.Options{}).Build(ivs),
		sc: segcount.New(pam.Options{}).Build(segs),
		st: stabbing.New(pam.Options{}).Build(rects),
	}
}

// counts returns the stab count at p from each structure, in the order
// interval, overlap, segcount, stabbing.
func (q quad) counts(p float64) [4]int64 {
	return [4]int64{
		q.iv.CountStab(p),
		q.ov.CountOverlapping(p, p),
		q.sc.CountLine(p),
		q.st.CountStab(p, 0),
	}
}

func assertAgree(t *testing.T, q quad, p float64, want int64) {
	t.Helper()
	got := q.counts(p)
	for i, name := range [4]string{"interval", "overlap", "segcount", "stabbing"} {
		if got[i] != want {
			t.Fatalf("%s count at %v = %d, want %d (all: %v)", name, p, got[i], want, got)
		}
	}
}

func TestTouchingEndpointsAgree(t *testing.T) {
	q := buildQuad([]interval.Interval{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}})
	cases := []struct {
		p    float64
		want int64
	}{
		{-0.5, 0},
		{0, 1},
		{0.5, 1},
		{1, 2}, // touching endpoint: both [0,1] and [1,2], closed on both sides
		{1.5, 1},
		{2, 2},
		{3, 1},
		{3.5, 0},
	}
	for _, c := range cases {
		assertAgree(t, q, c.p, c.want)
	}
}

func TestEmptyStructuresAgree(t *testing.T) {
	q := buildQuad(nil)
	for _, p := range []float64{-1, 0, 1, math.Inf(-1), math.Inf(1)} {
		assertAgree(t, q, p, 0)
	}
	if q.iv.Stab(0) || q.ov.Overlapping(0, 0) || q.st.Stabbed(0, 0) {
		t.Fatal("empty structures should stab nothing")
	}
	if len(q.sc.ReportLine(0)) != 0 || len(q.st.ReportStab(0, 0)) != 0 {
		t.Fatal("empty structures should report nothing")
	}
}

func TestSinglePointStabsAgree(t *testing.T) {
	q := buildQuad([]interval.Interval{{Lo: 5, Hi: 5}})
	assertAgree(t, q, 5, 1)
	assertAgree(t, q, 4.9999, 0)
	assertAgree(t, q, 5.0001, 0)
	// The degenerate interval must also be found by range/window queries
	// that merely touch it.
	if got := q.ov.CountOverlapping(5, 7); got != 1 {
		t.Fatalf("overlap [5,7] = %d, want 1", got)
	}
	if got := q.ov.CountOverlapping(3, 5); got != 1 {
		t.Fatalf("overlap [3,5] = %d, want 1", got)
	}
	if got := q.sc.CountWindow(5, 7, -1, 1); got != 1 {
		t.Fatalf("segcount window touching [5,5] = %d, want 1", got)
	}
	if got := q.ov.CountOverlapping(5.0001, 7); got != 0 {
		t.Fatalf("overlap just past the point = %d, want 0", got)
	}
}

// TestDegenerateEmbeddingsAgree drives all four structures with the same
// random interval set over a tiny integer universe (maximizing touching
// endpoints and duplicates) and checks counts and report sets agree at
// every probe.
func TestDegenerateEmbeddingsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const universe = 16
	ivs := make([]interval.Interval, 200)
	for i := range ivs {
		lo := float64(rng.Intn(universe))
		ivs[i] = interval.Interval{Lo: lo, Hi: lo + float64(rng.Intn(5))}
	}
	q := buildQuad(ivs)

	// Distinct intervals (set semantics) as the reference model.
	distinct := append([]interval.Interval{}, ivs...)
	slices.SortFunc(distinct, func(a, b interval.Interval) int {
		switch {
		case a.Lo != b.Lo:
			if a.Lo < b.Lo {
				return -1
			}
			return 1
		case a.Hi < b.Hi:
			return -1
		case a.Hi > b.Hi:
			return 1
		default:
			return 0
		}
	})
	distinct = slices.Compact(distinct)

	for p := -1.0; p <= universe+5; p += 0.5 {
		var want int64
		var wantIvs []interval.Interval
		for _, v := range distinct {
			if v.Covers(p) {
				want++
				wantIvs = append(wantIvs, v)
			}
		}
		assertAgree(t, q, p, want)

		segs := q.sc.ReportLine(p)
		gotIvs := make([]interval.Interval, len(segs))
		for i, s := range segs {
			gotIvs[i] = interval.Interval{Lo: s.XLo, Hi: s.XHi}
		}
		// segcount reports in (y, xLo, xHi) order; with y = 0 throughout
		// that is (Lo, Hi) order, matching the model's order.
		if !slices.Equal(gotIvs, wantIvs) {
			t.Fatalf("segcount report at %v = %v, want %v", p, gotIvs, wantIvs)
		}
		rects := q.st.ReportStab(p, 0)
		gotIvs = gotIvs[:0]
		for _, r := range rects {
			gotIvs = append(gotIvs, interval.Interval{Lo: r.XLo, Hi: r.XHi})
		}
		if !slices.Equal(gotIvs, wantIvs) {
			t.Fatalf("stabbing report at %v = %v, want %v", p, gotIvs, wantIvs)
		}
	}
}
