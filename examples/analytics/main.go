// Analytics: the paper's motivating example (§1) — a database of sales
// receipts keyed by time of sale, answering "sum of sales in a period"
// and "sales above a threshold in a period" without scanning.
package main

import (
	"fmt"
	"time"

	"repro/pam"
)

// saleEntry: keys are timestamps (unix seconds), values are sale
// amounts in cents, augmentation keeps BOTH the sum and the max so one
// structure serves both intro queries.
type saleEntry struct{}

type saleAgg struct {
	Sum int64
	Max int64
}

func (saleEntry) Less(a, b int64) bool { return a < b }
func (saleEntry) Id() saleAgg          { return saleAgg{Sum: 0, Max: -1 << 62} }
func (saleEntry) Base(_ int64, cents int64) saleAgg {
	return saleAgg{Sum: cents, Max: cents}
}
func (saleEntry) Combine(x, y saleAgg) saleAgg {
	return saleAgg{Sum: x.Sum + y.Sum, Max: max(x.Max, y.Max)}
}

func main() {
	day := time.Date(2018, 3, 28, 0, 0, 0, 0, time.UTC)
	at := func(h, m int) int64 { return day.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute).Unix() }

	sales := pam.NewAugMap[int64, int64, saleAgg, saleEntry](pam.Options{})
	receipts := []pam.KV[int64, int64]{
		{Key: at(9, 15), Val: 1250},
		{Key: at(10, 2), Val: 300},
		{Key: at(11, 48), Val: 9800},
		{Key: at(13, 30), Val: 420},
		{Key: at(15, 5), Val: 15600},
		{Key: at(16, 59), Val: 75},
		{Key: at(18, 20), Val: 2300},
	}
	sales = sales.Build(receipts, func(old, new int64) int64 { return old + new })

	// Sum and max of sales during business hours, in O(log n).
	biz := sales.AugRange(at(9, 0), at(17, 0))
	fmt.Printf("09:00-17:00  total $%.2f  largest $%.2f\n",
		float64(biz.Sum)/100, float64(biz.Max)/100)

	morning := sales.AugRange(at(9, 0), at(12, 0))
	fmt.Printf("morning      total $%.2f  largest $%.2f\n",
		float64(morning.Sum)/100, float64(morning.Max)/100)

	// "Report sales above a threshold": the augmented filter prunes
	// whole subtrees whose max is below the threshold —
	// O(k log(n/k+1)) for k results.
	big := sales.AugFilter(func(a saleAgg) bool { return a.Max >= 5000 })
	fmt.Println("sales of $50 or more:")
	big.ForEach(func(ts int64, cents int64) bool {
		fmt.Printf("  %s  $%.2f\n", time.Unix(ts, 0).UTC().Format("15:04"), float64(cents)/100)
		return true
	})

	// Persistent end-of-day snapshot: later mutations don't disturb it.
	endOfDay := sales
	sales = sales.Insert(at(23, 50), 999)
	fmt.Printf("end-of-day total $%.2f (late sale excluded), live total $%.2f\n",
		float64(endOfDay.AugVal().Sum)/100, float64(sales.AugVal().Sum)/100)
}
