// Snapshots: the paper's concurrency model (§4 "Concurrency") — many
// readers query consistent snapshots while a writer applies batched bulk
// updates; readers never block and never see partial updates.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/pam"
)

func main() {
	type M = pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]]
	shared := pam.NewShared(pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}))

	const batches = 50
	const batchSize = 2000

	var inconsistencies atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: each takes a snapshot and checks an invariant that only
	// holds on batch boundaries — every batch adds exactly batchSize
	// entries summing to a known value, so any torn read would surface
	// as a size that is not a multiple of batchSize.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := shared.Snapshot()
				if snap.Size()%batchSize != 0 {
					inconsistencies.Add(1)
				}
				// Derived analytics on the snapshot are stable too.
				half := snap.AugLeft(batches * batchSize / 2)
				_ = half
				reads.Add(1)
			}
		}()
	}

	// Writer: batched bulk inserts, the paper's recommended write path.
	var m M
	for b := 0; b < batches; b++ {
		items := make([]pam.KV[uint64, int64], batchSize)
		for i := range items {
			k := uint64(b*batchSize + i)
			items[i] = pam.KV[uint64, int64]{Key: k, Val: int64(k)}
		}
		m = shared.Snapshot().MultiInsert(items, nil)
		shared.Store(m)
	}
	close(stop)
	wg.Wait()

	final := shared.Snapshot()
	fmt.Printf("final size: %d entries, sum %d\n", final.Size(), final.AugVal())
	fmt.Printf("reader snapshots taken: %d, torn reads observed: %d\n",
		reads.Load(), inconsistencies.Load())
	if inconsistencies.Load() == 0 {
		fmt.Println("snapshot isolation held: every reader saw a batch boundary")
	}
}
