// Rangetree2d: the paper's 2D range-tree scenario (§1, §5.2) — "how many
// users are between 20 and 25 years old and have salaries between $50K
// and $90K", answered in O(log^2 n) by nested augmented maps.
package main

import (
	"fmt"

	"repro/internal/workload"
	"repro/pam"
	"repro/rangetree"
)

func main() {
	// Synthesize a population: x = age (18..67), y = salary ($20K..$180K),
	// weight 1 per person so sums count people.
	const n = 200_000
	raw := workload.Points(7, n, 1.0, 1)
	people := make([]rangetree.Weighted, n)
	for i, p := range raw {
		people[i] = rangetree.Weighted{
			Point: rangetree.Point{
				X: 18 + p.X*50,          // age
				Y: 20_000 + p.Y*160_000, // salary
			},
			W: 1,
		}
	}
	t := rangetree.New(pam.Options{}).Build(people)
	fmt.Printf("indexed %d people\n", t.Size())

	q := rangetree.Rect{XLo: 20, XHi: 25, YLo: 50_000, YHi: 90_000}
	fmt.Printf("age 20-25, salary $50K-$90K: %d people\n", t.QueryCount(q))

	// Sweep age bands: each query is O(log^2 n), so a dashboard can run
	// thousands of them interactively.
	fmt.Println("headcount by age band (salary $50K-$90K):")
	for age := 18.0; age < 68; age += 10 {
		r := rangetree.Rect{XLo: age, XHi: age + 10, YLo: 50_000, YHi: 90_000}
		fmt.Printf("  %2.0f-%2.0f: %6d\n", age, age+10, t.QueryCount(r))
	}

	// Weighted sums: re-weight by salary to get payroll in a rectangle.
	payroll := make([]rangetree.Weighted, n)
	for i, p := range people {
		payroll[i] = rangetree.Weighted{Point: p.Point, W: int64(p.Y)}
	}
	pt := rangetree.New(pam.Options{}).Build(payroll)
	fmt.Printf("total payroll for age 30-40: $%d\n",
		pt.QuerySum(rangetree.Rect{XLo: 30, XHi: 40, YLo: 0, YHi: 1e9}))

	// Report a small rectangle.
	small := rangetree.Rect{XLo: 21, XHi: 21.01, YLo: 0, YHi: 1e9}
	hits := t.ReportAll(small)
	fmt.Printf("people aged exactly ~21.00: %d\n", len(hits))
}
