// Intervals: the paper's interval-tree scenario (§5.1) — user login
// sessions as time intervals, answering "is anyone logged in at time t"
// and "who is logged in at time t" in logarithmic / output-sensitive
// time.
package main

import (
	"fmt"

	"repro/interval"
	"repro/overlap"
	"repro/pam"
)

func main() {
	// Login sessions in minutes-since-midnight.
	sessions := []interval.Interval{
		{Lo: 540, Hi: 600},  // alice 9:00-10:00
		{Lo: 555, Hi: 720},  // bob   9:15-12:00
		{Lo: 610, Hi: 615},  // carol 10:10-10:15
		{Lo: 680, Hi: 1020}, // dave  11:20-17:00
		{Lo: 900, Hi: 930},  // erin  15:00-15:30
	}
	m := interval.New(pam.Options{}).Build(sessions)

	for _, t := range []float64{605, 650, 905, 1030} {
		fmt.Printf("t=%4.0f  anyone logged in: %-5v  count: %d\n",
			t, m.Stab(t), m.CountStab(t))
	}

	fmt.Println("sessions covering t=700:")
	for _, iv := range m.ReportAll(700) {
		fmt.Printf("  [%.0f, %.0f]\n", iv.Lo, iv.Hi)
	}

	// Sessions are persistent too: end bob's session by building a new
	// version; dashboards holding the old snapshot are unaffected.
	after := m.Delete(interval.Interval{Lo: 555, Hi: 720})
	fmt.Printf("t=700 after bob logs off: %d active (snapshot still says %d)\n",
		after.CountStab(700), m.CountStab(700))

	// Bulk load a day's worth of machine-generated sessions in parallel.
	var batch []interval.Interval
	for i := 0; i < 10000; i++ {
		start := float64(i%1440) + float64(i%7)*0.1
		batch = append(batch, interval.Interval{Lo: start, Hi: start + 30})
	}
	loaded := after.MultiInsert(batch)
	fmt.Printf("after bulk load: %d sessions, t=700 covered by %d\n",
		loaded.Size(), loaded.CountStab(700))

	// Overlap queries (repro/overlap): sessions overlapping a whole
	// window, not just a point — e.g. everyone whose session intersects
	// the 10:00-11:00 maintenance window.
	ov := overlap.New(pam.Options{}).Build(sessions)
	fmt.Printf("sessions overlapping maintenance window [600, 660]: %d\n",
		ov.CountOverlapping(600, 660))
	for _, iv := range ov.ReportOverlapping(600, 660) {
		fmt.Printf("  [%.0f, %.0f]\n", iv.Lo, iv.Hi)
	}
}
