// Textsearch: the paper's inverted-index scenario (§5.3) — weighted
// boolean search with top-k ranking over a small embedded corpus.
package main

import (
	"fmt"
	"strings"

	"repro/invindex"
)

var docs = []struct {
	title string
	text  string
}{
	{"go-concurrency", "go routines and channels make concurrent programming simple; the go scheduler multiplexes goroutines onto threads"},
	{"balanced-trees", "balanced search trees such as avl trees red black trees and weight balanced trees keep operations logarithmic"},
	{"parallel-maps", "parallel ordered maps support union intersection and difference with join based algorithms on balanced trees"},
	{"augmented-maps", "augmented maps keep a sum over values in every subtree so range sums and filters run in logarithmic time"},
	{"search-engines", "search engines build inverted indexes mapping words to documents and rank results by weight taking the top matches"},
	{"persistence", "persistent data structures never modify nodes; path copying shares structure between versions of balanced trees"},
}

func main() {
	var triples []invindex.Triple
	for id, d := range docs {
		counts := map[string]int{}
		for _, w := range strings.Fields(d.text) {
			counts[w]++
		}
		for w, c := range counts {
			triples = append(triples, invindex.Triple{
				Word: w, Doc: invindex.DocID(id), W: invindex.Weight(c),
			})
		}
	}
	ix := invindex.Build(triples)
	fmt.Printf("indexed %d documents, %d distinct words\n\n", len(docs), ix.Words())

	show := func(label string, p invindex.Posting) {
		fmt.Printf("%s -> %d docs\n", label, p.Size())
		for _, dw := range invindex.TopK(p, 3) {
			fmt.Printf("  %-16s score %.0f\n", docs[dw.Doc].title, float64(dw.W))
		}
		fmt.Println()
	}

	show(`"trees" AND "balanced"`, ix.QueryAnd("trees", "balanced"))
	show(`"maps" OR "trees"`, ix.QueryOr("maps", "trees"))
	show(`"trees" NOT "red"`,
		invindex.AndNot(ix.Posting("trees"), ix.Posting("red")))

	// Posting maps are ordinary persistent augmented maps: compose
	// queries freely — e.g. documents mentioning trees and either
	// parallel or persistent concepts.
	composite := invindex.And(
		ix.Posting("trees"),
		invindex.Or(ix.Posting("parallel"), ix.Posting("persistent")),
	)
	show(`"trees" AND ("parallel" OR "persistent")`, composite)
}
