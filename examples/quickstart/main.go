// Quickstart: the augmented map in five minutes — the paper's Equation 1
// map (integer keys, values summed by the augmentation) and the core
// operations of the Figure 1 interface.
package main

import (
	"fmt"

	"repro/pam"
)

func main() {
	// An ordered map from int keys to int64 values whose augmented value
	// is the sum of all values: AM(K, <, V, V, (k,v)->v, +, 0).
	m := pam.NewAugMap[int, int64, int64, pam.SumEntry[int, int64]](pam.Options{})

	// Point updates are persistent: each returns a new map.
	m = m.Insert(3, 30).Insert(1, 10).Insert(2, 20)
	fmt.Println("size:", m.Size())         // 3
	fmt.Println("sum (O(1)):", m.AugVal()) // 60

	// Bulk build from unsorted input (parallel sort + join construction).
	items := make([]pam.KV[int, int64], 0, 1000)
	for i := 0; i < 1000; i++ {
		items = append(items, pam.KV[int, int64]{Key: i, Val: int64(i)})
	}
	big := m.Build(items, nil)
	fmt.Println("range sum 100..199 (O(log n)):", big.AugRange(100, 199))

	// Set operations run in parallel and are persistent: big is intact
	// afterwards.
	odds := big.Filter(func(k int, _ int64) bool { return k%2 == 1 })
	evens := big.Difference(odds)
	fmt.Println("odds:", odds.Size(), "evens:", evens.Size())
	both := odds.Union(evens)
	fmt.Println("union size:", both.Size(), "sum:", both.AugVal())

	// Ordered queries.
	k, v, _ := big.Select(500)
	fmt.Printf("rank-500 entry: %d=%d; rank of 500: %d\n", k, v, big.Rank(500))

	// MapReduce with a different result type (free function: extra type
	// parameter).
	maxVal := pam.MapReduce(big,
		func(_ int, v int64) int64 { return v },
		func(a, b int64) int64 { return max(a, b) },
		-1)
	fmt.Println("max value via mapReduce:", maxVal)

	// Snapshots: old versions never change.
	before := big
	big = big.Delete(0)
	fmt.Println("snapshot still has 0:", before.Contains(0), "- new one:", big.Contains(0))
}
